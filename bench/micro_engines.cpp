// Microbenchmarks for the simulation engines themselves: round dispatch
// overhead, message throughput, event-queue cost, and the performance-layer
// knobs (ISSUE 5): payload size across the SmallPayload inline/spill
// boundary, and sharded parallel rounds at several thread counts.
//
// tools/bench_smoke.sh runs this suite and commits BENCH_sim.json as the
// regression baseline; tools/ci.sh bench-compare diffs fresh runs against
// it with a tolerance band.
#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "algos/dfs_schedule.h"
#include "algos/dist_mis.h"
#include "graph/generators.h"
#include "sim/async_engine.h"
#include "sim/sync_engine.h"
#include "support/alloc_audit.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace {

using namespace fdlsp;

/// Gossip for a fixed number of rounds: every node rebroadcasts each round,
/// carrying `words` int64s (words <= 4 stays inline in SmallPayload, more
/// spills to the heap).
class GossipProgram final : public SyncProgram {
 public:
  explicit GossipProgram(std::size_t rounds, std::size_t words = 1)
      : rounds_(rounds), words_(words) {}
  void on_round(SyncContext& ctx, std::span<const Message>) override {
    ++executed_;
    Message message;
    message.tag = 1;
    for (std::size_t w = 0; w < words_; ++w)
      message.data.push_back(static_cast<std::int64_t>(executed_ + w));
    ctx.broadcast(std::move(message));
  }
  bool ready_for_phase_advance() const override { return false; }
  void on_phase(std::size_t) override {}
  bool finished() const override { return executed_ >= rounds_; }

 private:
  std::size_t rounds_;
  std::size_t words_;
  std::size_t executed_ = 0;
};

void BM_SyncEngineGossip(benchmark::State& state) {
  Rng rng(5);
  const Graph graph =
      generate_gnm(static_cast<std::size_t>(state.range(0)),
                   static_cast<std::size_t>(state.range(0)) * 4, rng);
  for (auto _ : state) {
    std::vector<std::unique_ptr<SyncProgram>> programs;
    for (NodeId v = 0; v < graph.num_nodes(); ++v)
      programs.push_back(std::make_unique<GossipProgram>(20));
    SyncEngine engine(graph, std::move(programs));
    const SyncMetrics metrics = engine.run();
    benchmark::DoNotOptimize(metrics.messages);
    state.counters["msgs"] = static_cast<double>(metrics.messages);
  }
}
BENCHMARK(BM_SyncEngineGossip)->Arg(100)->Arg(500);

/// Payload-size sweep across the SmallPayload boundary: 2 and 4 words are
/// inline (zero-alloc), 8 and 16 spill. Args: {nodes, words}.
void BM_SyncEngineGossipPayload(benchmark::State& state) {
  Rng rng(5);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto words = static_cast<std::size_t>(state.range(1));
  const Graph graph = generate_gnm(n, n * 4, rng);
  for (auto _ : state) {
    std::vector<std::unique_ptr<SyncProgram>> programs;
    for (NodeId v = 0; v < graph.num_nodes(); ++v)
      programs.push_back(std::make_unique<GossipProgram>(20, words));
    SyncEngine engine(graph, std::move(programs));
    const SyncMetrics metrics = engine.run();
    benchmark::DoNotOptimize(metrics.messages);
    state.counters["msgs"] = static_cast<double>(metrics.messages);
  }
}
BENCHMARK(BM_SyncEngineGossipPayload)
    ->Args({200, 2})
    ->Args({200, 4})
    ->Args({200, 8})
    ->Args({200, 16});

/// Thread-count sweep of the sharded round loop. Args: {nodes, threads};
/// threads == 0 runs the serial engine (no pool attached). Results are
/// byte-identical across the sweep (tests/engine_parallel_test.cpp); this
/// bench measures only the wall-time effect of sharding.
void BM_SyncEngineGossipThreads(benchmark::State& state) {
  Rng rng(5);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const Graph graph = generate_gnm(n, n * 4, rng);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
  for (auto _ : state) {
    std::vector<std::unique_ptr<SyncProgram>> programs;
    for (NodeId v = 0; v < graph.num_nodes(); ++v)
      programs.push_back(std::make_unique<GossipProgram>(20, 2));
    SyncEngine engine(graph, std::move(programs));
    engine.set_thread_pool(pool.get());
    const SyncMetrics metrics = engine.run();
    benchmark::DoNotOptimize(metrics.messages);
    state.counters["msgs"] = static_cast<double>(metrics.messages);
  }
}
BENCHMARK(BM_SyncEngineGossipThreads)
    ->Args({500, 0})
    ->Args({500, 1})
    ->Args({500, 2})
    ->Args({500, 8});

/// End-to-end DistMIS on a paper-style UDG field, thread-parameterized.
/// Args: {nodes, threads}; the field side is chosen for average degree ~6
/// at every n so the per-node work stays comparable across sizes. This is
/// the headline row of EXPERIMENTS.md's engine-throughput table.
void BM_DistMisUdg(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const double radius = 0.5;
  const double side =
      std::sqrt(static_cast<double>(n) * 3.14159265 * radius * radius / 6.0);
  Rng rng(42);
  const Graph graph = generate_udg(n, side, radius, rng).graph;
  std::unique_ptr<ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
  for (auto _ : state) {
    AllocAudit audit;
    DistMisOptions options;
    options.variant = DistMisVariant::kGbg;
    options.seed = 42;
    options.pool = pool.get();
    options.audit = &audit;
    const ScheduleResult result = run_dist_mis(graph, options);
    benchmark::DoNotOptimize(result.num_slots);
    state.counters["msgs"] = static_cast<double>(result.messages);
    state.counters["rounds"] = static_cast<double>(result.rounds);
    // Steady-state allocation profile (support/alloc_audit.h): total
    // in-round allocations and the count of rounds that allocated at all.
    // Both are 0 under sanitizers (hooks compiled out); the regression
    // gate on these counters lives in tests/engine_alloc_test.cpp — here
    // they document the warm-up share next to the timing numbers.
    state.counters["allocs"] = static_cast<double>(audit.total_allocations());
    state.counters["alloc_rounds"] =
        static_cast<double>(audit.allocating_rounds());
  }
}
BENCHMARK(BM_DistMisUdg)
    ->Args({200, 0})
    ->Args({200, 2})
    ->Args({500, 0})
    ->Args({500, 2})
    ->Args({1000, 0})
    ->Args({1000, 2})
    ->Args({1000, 8})
    ->Unit(benchmark::kMillisecond);

/// Shard-scaling rows (DESIGN.md §14, EXPERIMENTS.md "Shard scaling"):
/// DistMIS-GBG on the paper UDG with engine *state* sharded via
/// DistMisOptions::shards. Args: {nodes, shards}. Registered from main()
/// according to FDLSP_BENCH_SCALE rather than statically, so the default
/// suite stays CI-sized: scale "1" (the default) runs the n=10^5 smoke at
/// 1 vs 2 shards, scale "full" runs the n=10^6 curve at 1/2/4/8 shards.
/// Both cap at one iteration — at these sizes a single run is seconds to
/// minutes and the sweep exists for the scaling *curve*, not ns precision.
///
/// The pool is sized min(shards, hardware_concurrency): shards beyond the
/// core count still partition state (and are byte-identical — the curve is
/// about wall time only), they just time-slice. peak_rss_mb is getrusage's
/// process-wide high-water mark, which is monotone across rows within one
/// binary run: the first row of a scale is the honest peak for that
/// configuration, later rows are lower bounds.
void BM_DistMisUdgSharded(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  const double radius = 0.5;
  const double side =
      std::sqrt(static_cast<double>(n) * 3.14159265 * radius * radius / 6.0);
  Rng rng(42);
  const Graph graph = generate_udg(n, side, radius, rng).graph;
  const auto hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  ThreadPool pool(std::min(shards, hardware));
  for (auto _ : state) {
    AllocAudit audit;
    DistMisOptions options;
    options.variant = DistMisVariant::kGbg;
    options.seed = 42;
    options.pool = &pool;
    options.shards = shards;
    options.audit = &audit;
    const ScheduleResult result = run_dist_mis(graph, options);
    benchmark::DoNotOptimize(result.num_slots);
    state.counters["msgs"] = static_cast<double>(result.messages);
    state.counters["rounds"] = static_cast<double>(result.rounds);
    // The audit seam does not force the serial engine, so these counters
    // really describe the sharded path: lane recycling must keep the
    // steady state allocation-free per shard (tests/engine_alloc_test.cpp
    // gates this at n=1000; here the numbers ride along at scale).
    state.counters["allocs"] = static_cast<double>(audit.total_allocations());
    state.counters["alloc_rounds"] =
        static_cast<double>(audit.allocating_rounds());
  }
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0)
    state.counters["peak_rss_mb"] =
        static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// Ping-pong along a random ring for a fixed hop count.
class HopProgram final : public AsyncProgram {
 public:
  HopProgram(NodeId self, std::size_t n, std::size_t hops)
      : self_(self), n_(n), hops_(hops) {}
  void on_start(AsyncContext& ctx) override {
    if (self_ != 0) return;
    Message message;
    message.tag = 1;
    message.data = {0};
    ctx.send(1 % static_cast<NodeId>(n_), std::move(message));
  }
  void on_message(AsyncContext& ctx, Message& message) override {
    if (static_cast<std::size_t>(message.data[0]) >= hops_) return;
    Message next;
    next.tag = 1;
    next.data = {message.data[0] + 1};
    ctx.send((self_ + 1) % static_cast<NodeId>(n_), std::move(next));
  }
  bool finished() const override { return true; }

 private:
  NodeId self_;
  std::size_t n_;
  std::size_t hops_;
};

void BM_AsyncEngineRingHops(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph ring = generate_cycle(n);
  for (auto _ : state) {
    std::vector<std::unique_ptr<AsyncProgram>> programs;
    for (NodeId v = 0; v < n; ++v)
      programs.push_back(std::make_unique<HopProgram>(v, n, 10'000));
    AsyncEngine engine(ring, std::move(programs), DelayModel::kUnit);
    benchmark::DoNotOptimize(engine.run().messages);
  }
}
BENCHMARK(BM_AsyncEngineRingHops)->Arg(64);

/// Headline row of EXPERIMENTS.md's "Async engine throughput" table:
/// DistMIS behind the α-synchronizer (sim/synchronizer.h) on the paper UDG,
/// shard-parameterized. Args: {nodes, shards}; shards == 0 runs the serial
/// event queue. msgs/timer_events are the *engine's* event counts (frames
/// and polls, not DistMIS protocol messages) — the work the event queue
/// actually dispatches. The result is byte-identical across the shard sweep
/// (tests/async_sharded_test.cpp); this bench measures wall time and the
/// steady-state allocation profile.
void BM_AsyncDistMisUdg(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  const double radius = 0.5;
  const double side =
      std::sqrt(static_cast<double>(n) * 3.14159265 * radius * radius / 6.0);
  Rng rng(42);
  const Graph graph = generate_udg(n, side, radius, rng).graph;
  for (auto _ : state) {
    AllocAudit audit;
    AsyncMetrics engine_metrics;
    AsyncDistMisOptions options;
    options.variant = DistMisVariant::kGbg;
    options.seed = 42;
    options.shards = shards;
    options.audit = &audit;
    options.engine_metrics = &engine_metrics;
    const ScheduleResult result = run_dist_mis_async(graph, options);
    benchmark::DoNotOptimize(result.num_slots);
    state.counters["msgs"] = static_cast<double>(engine_metrics.messages);
    state.counters["timer_events"] =
        static_cast<double>(engine_metrics.timer_events);
    state.counters["allocs"] = static_cast<double>(audit.total_allocations());
    state.counters["alloc_rounds"] =
        static_cast<double>(audit.allocating_rounds());
  }
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0)
    state.counters["peak_rss_mb"] =
        static_cast<double>(usage.ru_maxrss) / 1024.0;
}
BENCHMARK(BM_AsyncDistMisUdg)
    ->Args({1000, 0})
    ->Args({1000, 8})
    ->Unit(benchmark::kMillisecond);

/// Timer-heavy row: reliable DFS under a bursty loss plan. Retransmit and
/// heartbeat timers dominate the event mix here, so this row exercises the
/// timer wheel the way the retransmission layer does in the soak harness.
/// Faults force the serial event path by design, so there is no shard
/// parameter.
void BM_AsyncReliableBurst(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  // A grid is connected by construction (DFS needs the token to reach every
  // node); rows x 20 keeps the row parameter a clean node-count dial.
  const Graph graph = generate_grid(rows, 20);
  FaultSpec spec;
  spec.drop_rate = 0.05;
  spec.burst_rate = 0.02;
  spec.seed = 11;
  for (auto _ : state) {
    AllocAudit audit;
    AsyncMetrics engine_metrics;
    DfsOptions options;
    options.seed = 7;
    options.faults = &spec;
    options.reliable = true;
    options.audit = &audit;
    options.engine_metrics = &engine_metrics;
    const ScheduleResult result = run_dfs_schedule(graph, options);
    benchmark::DoNotOptimize(result.num_slots);
    state.counters["msgs"] = static_cast<double>(engine_metrics.messages);
    state.counters["timer_events"] =
        static_cast<double>(engine_metrics.timer_events);
    state.counters["allocs"] = static_cast<double>(audit.total_allocations());
    state.counters["retransmits"] =
        static_cast<double>(result.transport.retransmits);
  }
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0)
    state.counters["peak_rss_mb"] =
        static_cast<double>(usage.ru_maxrss) / 1024.0;
}
BENCHMARK(BM_AsyncReliableBurst)->Arg(15)->Unit(benchmark::kMillisecond);

}  // namespace

// Manual main so the scale rows can be registered conditionally on the
// FDLSP_BENCH_SCALE environment variable (see BM_DistMisUdgSharded). The
// statically BENCHMARK()-registered suite above is unaffected.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  const char* scale_env = std::getenv("FDLSP_BENCH_SCALE");
  const std::string scale = scale_env != nullptr ? scale_env : "1";
  auto* sharded = benchmark::RegisterBenchmark("BM_DistMisUdgSharded",
                                               BM_DistMisUdgSharded);
  sharded->Unit(benchmark::kMillisecond)->Iterations(1);
  if (scale == "full") {
    for (const long shards : {1, 2, 4, 8})
      sharded->Args({1'000'000, shards});
  } else {
    for (const long shards : {1, 2})
      sharded->Args({100'000, shards});
  }

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
