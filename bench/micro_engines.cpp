// Microbenchmarks for the simulation engines themselves: round dispatch
// overhead, message throughput, and event-queue cost.
#include <benchmark/benchmark.h>

#include <memory>

#include "graph/generators.h"
#include "sim/async_engine.h"
#include "sim/sync_engine.h"
#include "support/rng.h"

namespace {

using namespace fdlsp;

/// Gossip for a fixed number of rounds: every node rebroadcasts each round.
class GossipProgram final : public SyncProgram {
 public:
  explicit GossipProgram(std::size_t rounds) : rounds_(rounds) {}
  void on_round(SyncContext& ctx, std::span<const Message>) override {
    ++executed_;
    Message message;
    message.tag = 1;
    message.data = {static_cast<std::int64_t>(executed_)};
    ctx.broadcast(std::move(message));
  }
  bool ready_for_phase_advance() const override { return false; }
  void on_phase(std::size_t) override {}
  bool finished() const override { return executed_ >= rounds_; }

 private:
  std::size_t rounds_;
  std::size_t executed_ = 0;
};

void BM_SyncEngineGossip(benchmark::State& state) {
  Rng rng(5);
  const Graph graph =
      generate_gnm(static_cast<std::size_t>(state.range(0)),
                   static_cast<std::size_t>(state.range(0)) * 4, rng);
  for (auto _ : state) {
    std::vector<std::unique_ptr<SyncProgram>> programs;
    for (NodeId v = 0; v < graph.num_nodes(); ++v)
      programs.push_back(std::make_unique<GossipProgram>(20));
    SyncEngine engine(graph, std::move(programs));
    const SyncMetrics metrics = engine.run();
    benchmark::DoNotOptimize(metrics.messages);
    state.counters["msgs"] = static_cast<double>(metrics.messages);
  }
}
BENCHMARK(BM_SyncEngineGossip)->Arg(100)->Arg(500);

/// Ping-pong along a random ring for a fixed hop count.
class HopProgram final : public AsyncProgram {
 public:
  HopProgram(NodeId self, std::size_t n, std::size_t hops)
      : self_(self), n_(n), hops_(hops) {}
  void on_start(AsyncContext& ctx) override {
    if (self_ != 0) return;
    Message message;
    message.tag = 1;
    message.data = {0};
    ctx.send(1 % static_cast<NodeId>(n_), std::move(message));
  }
  void on_message(AsyncContext& ctx, const Message& message) override {
    if (static_cast<std::size_t>(message.data[0]) >= hops_) return;
    Message next;
    next.tag = 1;
    next.data = {message.data[0] + 1};
    ctx.send((self_ + 1) % static_cast<NodeId>(n_), std::move(next));
  }
  bool finished() const override { return true; }

 private:
  NodeId self_;
  std::size_t n_;
  std::size_t hops_;
};

void BM_AsyncEngineRingHops(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph ring = generate_cycle(n);
  for (auto _ : state) {
    std::vector<std::unique_ptr<AsyncProgram>> programs;
    for (NodeId v = 0; v < n; ++v)
      programs.push_back(std::make_unique<HopProgram>(v, n, 10'000));
    AsyncEngine engine(ring, std::move(programs), DelayModel::kUnit);
    benchmark::DoNotOptimize(engine.run().messages);
  }
}
BENCHMARK(BM_AsyncEngineRingHops)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
