// Shared driver code for the figure-reproduction binaries.
//
// Every figure binary accepts:
//   --instances=N   random instances per point (default 15; paper used 75)
//   --seed=S        base RNG seed (default 1)
//   --csv=PATH      also dump the table as CSV
//   --threads=T     worker threads (default: hardware concurrency)
#pragma once

#include <string>
#include <vector>

#include "exp/runner.h"
#include "support/cli.h"

namespace fdlsp::bench {

/// Configuration decoded from the command line.
struct FigureConfig {
  RunConfig run;
  std::string csv_path;
  std::size_t threads = 0;
};

/// Parses the standard figure flags.
FigureConfig parse_figure_args(int argc, const char* const* argv,
                               std::vector<SchedulerKind> kinds);

/// Runs a UDG slots figure (Figures 8-10): one point per node count on the
/// given plan side, comparing all schedulers plus bounds.
int run_udg_slots_figure(const std::string& title, double side, int argc,
                         const char* const* argv);

/// Runs a general-graph slots figure (Figures 11-12).
int run_general_slots_figure(const std::string& title, std::size_t nodes,
                             int argc, const char* const* argv);

/// Runs a DistMIS rounds figure over general graphs (Figures 14-15).
int run_general_rounds_figure(const std::string& title, std::size_t nodes,
                              int argc, const char* const* argv);

}  // namespace fdlsp::bench
