// Fault sweep: robustness cost of the ack/retransmit hardening as a
// function of the message-drop rate. For each drop rate, runs the hardened
// synchronous (DistMIS/GBG) and asynchronous (DFS) schedulers over a batch
// of seeded G(n, m) instances and reports slot count, message count, and
// completion time (engine rounds / virtual time) relative to the fault-free
// baseline — the slots/messages/time-vs-drop-rate table in EXPERIMENTS.md.
#include <cstdint>
#include <iostream>
#include <vector>

#include "algos/scheduler.h"
#include "coloring/checker.h"
#include "graph/algorithms.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "sim/fault.h"
#include "support/check.h"
#include "support/cli.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace fdlsp;
  const CliArgs args(argc, argv);
  const auto nodes = static_cast<std::size_t>(args.get_int("nodes", 40));
  const auto edges = static_cast<std::size_t>(args.get_int("edges", 80));
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 5));
  const auto base_seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  const std::vector<double> drop_rates = {0.0, 0.05, 0.1, 0.2, 0.3};

  TextTable table({"scheduler", "drop", "slots", "messages", "time",
                   "msg overhead"});
  for (const SchedulerKind kind :
       {SchedulerKind::kDistMisGbg, SchedulerKind::kDfs}) {
    double baseline_messages = 0.0;
    for (const double drop : drop_rates) {
      Summary slots, messages, time;
      for (std::size_t trial = 0; trial < trials; ++trial) {
        Rng rng(base_seed + trial);
        Graph graph = generate_gnm(nodes, edges, rng);
        // DFS needs a connected instance; resample until one appears.
        while (kind == SchedulerKind::kDfs && !is_connected(graph))
          graph = generate_gnm(nodes, edges, rng);

        FaultSpec spec;
        spec.seed = base_seed + 100 * trial + 7;
        spec.drop_rate = drop;
        const ScheduleResult result = run_scheduler_faulted(
            kind, graph, base_seed + trial, spec, /*reliable=*/true);
        FDLSP_REQUIRE(result.completed, "hardened run must reach quiescence");
        FDLSP_REQUIRE(
            is_feasible_schedule(ArcView(graph), result.coloring),
            "hardened run must stay feasible");
        slots.add(static_cast<double>(result.num_slots));
        messages.add(static_cast<double>(result.messages));
        time.add(kind == SchedulerKind::kDfs
                     ? result.async_time
                     : static_cast<double>(result.rounds));
      }
      if (drop == 0.0) baseline_messages = messages.mean();
      table.add_row(
          {scheduler_name(kind), fmt_double(drop, 2),
           fmt_double(slots.mean(), 1), fmt_double(messages.mean(), 0),
           fmt_double(time.mean(), 0),
           fmt_double(baseline_messages == 0.0
                          ? 1.0
                          : messages.mean() / baseline_messages,
                      2)});
    }
  }

  std::cout << "== Fault sweep: hardened schedulers vs drop rate (G(n,m) "
            << "n=" << nodes << " m=" << edges << ", " << trials
            << " trials) ==\n";
  table.print(std::cout);
  std::cout << "(slots stay flat — reliability is a transport concern; the "
               "price of loss is retransmission traffic and time)\n";

  // Robustness tax under correlated (Gilbert–Elliott) loss: the legacy
  // fixed-timer transport vs the adaptive one, at matched burst intensity.
  // The fixed tuning provisions its round window for the worst-case burst
  // budget on every inner round; the adaptive one pays with backoff and
  // probing only where bursts actually bite.
  const std::vector<double> burst_rates = {0.0, 0.1, 0.2, 0.3};
  TextTable burst_table({"scheduler", "tuning", "bp", "messages",
                         "retransmits", "time", "suspicions"});
  for (const SchedulerKind kind :
       {SchedulerKind::kDistMisGbg, SchedulerKind::kDfs}) {
    for (const TransportTuning tuning :
         {TransportTuning::kFixed, TransportTuning::kAdaptive}) {
      for (const double burst : burst_rates) {
        Summary messages, retransmits, time, suspicions;
        for (std::size_t trial = 0; trial < trials; ++trial) {
          Rng rng(base_seed + trial);
          Graph graph = generate_gnm(nodes, edges, rng);
          while (kind == SchedulerKind::kDfs && !is_connected(graph))
            graph = generate_gnm(nodes, edges, rng);

          FaultSpec spec;
          spec.seed = base_seed + 100 * trial + 13;
          spec.burst_rate = burst;
          spec.burst_recover = 0.25;
          spec.burst_loss = 0.9;
          const ScheduleResult result =
              run_scheduler_faulted(kind, graph, base_seed + trial, spec,
                                    /*reliable=*/true, tuning);
          FDLSP_REQUIRE(result.completed,
                        "hardened run must reach quiescence");
          FDLSP_REQUIRE(
              is_feasible_schedule(ArcView(graph), result.coloring),
              "hardened run must stay feasible");
          messages.add(static_cast<double>(result.messages));
          retransmits.add(static_cast<double>(result.transport.retransmits));
          time.add(kind == SchedulerKind::kDfs
                       ? result.async_time
                       : static_cast<double>(result.rounds));
          suspicions.add(static_cast<double>(result.transport.suspicions));
        }
        burst_table.add_row(
            {scheduler_name(kind),
             tuning == TransportTuning::kFixed ? "fixed" : "adaptive",
             fmt_double(burst, 2), fmt_double(messages.mean(), 0),
             fmt_double(retransmits.mean(), 0), fmt_double(time.mean(), 0),
             fmt_double(suspicions.mean(), 1)});
      }
    }
  }
  std::cout << "\n== Robustness tax: fixed vs adaptive transport under "
            << "Gilbert-Elliott bursts (bq=0.25, bloss=0.9) ==\n";
  burst_table.print(std::cout);
  std::cout << "(the adaptive transport trades the fixed tuning's blanket "
               "retransmissions for backoff, probes, and transient "
               "suspicion)\n";
  return 0;
}
