// Figure 13: DistMIS communication rounds on UDGs as the number of edges
// grows, for fixed node counts 100 / 200 / 300. The paper varies density by
// changing the plan side; we sweep sides {20, 17, 15, 12, 10} per node
// count and report mean edges, rounds and messages per point — the series'
// shape (rounds ≪ n, growing mildly with density) is the figure's claim.
#include <iostream>
#include <string>

#include "bench_common.h"
#include "exp/report.h"

int main(int argc, char** argv) {
  using namespace fdlsp;
  using namespace fdlsp::bench;
  const FigureConfig config =
      parse_figure_args(argc, argv, {SchedulerKind::kDistMisGbg});
  ThreadPool pool(config.threads);

  std::cout << "== Figure 13: distMIS rounds on UDG (varying density) ==\n";
  for (std::size_t nodes : {100u, 200u, 300u}) {
    TextTable table({"side", "edges", "avg-degree", "rounds", "messages"});
    for (double side : {20.0, 17.0, 15.0, 12.0, 10.0}) {
      PointResult point = run_udg_point(
          UdgPoint{nodes, side * kUdgUnitLength, 0.5}, config.run, pool);
      const auto& agg = point.algorithms.at(SchedulerKind::kDistMisGbg);
      const double edges =
          point.avg_degree.mean() * static_cast<double>(nodes) / 2.0;
      table.add_row({fmt_double(side, 0), fmt_double(edges, 1),
                     fmt_double(point.avg_degree.mean(), 2),
                     fmt_double(agg.rounds.mean(), 1),
                     fmt_double(agg.messages.mean(), 0)});
    }
    std::cout << "-- " << nodes << " nodes --\n";
    table.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
