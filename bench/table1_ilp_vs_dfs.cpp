// Table 1: optimal (ILP) vs distributed DFS slot counts on complete
// bipartite and complete graphs.
//
// The optimum comes from the DSATUR exact solver on the conflict graph
// (provably the Section 4 ILP's optimum; see DESIGN.md). The smallest
// instances are additionally solved by the from-scratch branch-and-bound
// ILP as a cross-check, printed in the `ilp-bb` column ("-" where the
// instance is beyond the B&B's practical reach).
#include <iostream>
#include <string>

#include "algos/dfs_schedule.h"
#include "coloring/exact.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "ilp/fdlsp_ilp.h"
#include "support/cli.h"
#include "support/table.h"

namespace {

struct Instance {
  std::string name;
  fdlsp::Graph graph;
  bool run_bb_ilp;  // branch-and-bound ILP cross-check feasible?
};

}  // namespace

int main(int argc, char** argv) {
  using namespace fdlsp;
  const CliArgs args(argc, argv);
  const bool skip_bb = args.has("no-bb");

  std::vector<Instance> instances;
  instances.push_back({"K_{2,2}", generate_complete_bipartite(2, 2), true});
  instances.push_back({"K_{3,3}", generate_complete_bipartite(3, 3), false});
  instances.push_back({"K_{4,4}", generate_complete_bipartite(4, 4), false});
  instances.push_back({"K_4", generate_complete(4), false});
  instances.push_back({"K_5", generate_complete(5), false});

  TextTable table({"graph", "ILP (exact)", "ilp-bb", "DFS"});
  for (const Instance& instance : instances) {
    const ArcView view(instance.graph);
    const auto exact = optimal_fdlsp(view);
    std::string bb_value = "-";
    if (instance.run_bb_ilp && !skip_bb) {
      const auto bb = solve_fdlsp_ilp(view);
      bb_value = std::to_string(bb.num_colors) + (bb.optimal ? "" : "*");
    }
    const auto dfs = run_dfs_schedule(instance.graph);
    table.add_row({instance.name,
                   std::to_string(exact.num_colors) +
                       (exact.optimal ? "" : "*"),
                   bb_value, std::to_string(dfs.num_slots)});
  }
  std::cout << "== Table 1: ILP vs distributed DFS ==\n";
  std::cout << "(paper reference: K_{2,2}=4/4, K_{3,3}=9/10, K_{4,4}=15/18, "
               "K_4=12/12, K_5=20/20)\n";
  std::cout << "(note: the paper's K_{4,4}=15 is infeasible under its own "
               "constraint 2 — the 16 same-direction arcs pairwise conflict; "
               "the true optimum is 16. See EXPERIMENTS.md.)\n";
  table.print(std::cout);
  return 0;
}
