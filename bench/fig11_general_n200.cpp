// Figure 11: average TDMA slot counts on general random graphs with 200
// nodes and a swept edge count; distMIS (general variant) vs DFS vs D-MGC.
#include "bench_common.h"

int main(int argc, char** argv) {
  return fdlsp::bench::run_general_slots_figure(
      "Figure 11: time slots, general graphs, 200 nodes", 200, argc, argv);
}
