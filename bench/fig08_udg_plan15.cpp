// Figure 8: average TDMA slot counts on random unit disk graphs placed in a
// 15x15 plan (radius 0.5), n in {50, 100, 200, 300}; distMIS vs DFS vs D-MGC
// with the Theorem-1 lower bound and the 2Δ² upper bound.
#include "bench_common.h"

int main(int argc, char** argv) {
  return fdlsp::bench::run_udg_slots_figure(
      "Figure 8: time slots, UDG plan 15x15", 15.0, argc, argv);
}
