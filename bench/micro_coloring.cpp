// Microbenchmarks for the coloring core: conflict enumeration, greedy
// coloring, conflict-graph construction, feasibility checking.
//
// The *Indexed variants measure the same operations through a prebuilt
// ConflictIndex; the baseline (non-indexed) variants are the regression
// reference for BENCH_coloring.json, so keep both in the suite.
#include <benchmark/benchmark.h>

#include "coloring/checker.h"
#include "coloring/conflict.h"
#include "coloring/conflict_graph.h"
#include "coloring/conflict_index.h"
#include "coloring/bounds.h"
#include "coloring/greedy.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace {

using namespace fdlsp;

Graph make_udg(std::size_t n, double side) {
  Rng rng(42);
  return generate_udg(n, side, 0.5, rng).graph;
}

ThreadPool& bench_pool() {
  static ThreadPool pool;  // hardware concurrency; shared across benchmarks
  return pool;
}

void BM_GreedyColoring(benchmark::State& state) {
  const Graph graph = make_udg(static_cast<std::size_t>(state.range(0)), 8.0);
  const ArcView view(graph);
  for (auto _ : state) {
    ArcColoring coloring = greedy_coloring(view);
    benchmark::DoNotOptimize(coloring.num_colors_used());
  }
  state.counters["edges"] = static_cast<double>(graph.num_edges());
}
BENCHMARK(BM_GreedyColoring)->Arg(100)->Arg(300)->Arg(1000);

void BM_ConflictEnumeration(benchmark::State& state) {
  const Graph graph = make_udg(static_cast<std::size_t>(state.range(0)), 8.0);
  const ArcView view(graph);
  for (auto _ : state) {
    std::size_t total = 0;
    for (ArcId a = 0; a < view.num_arcs(); ++a)
      total += conflicting_arcs(view, a).size();
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_ConflictEnumeration)->Arg(100)->Arg(300);

void BM_ConflictGraphBuild(benchmark::State& state) {
  const Graph graph = make_udg(static_cast<std::size_t>(state.range(0)), 8.0);
  const ArcView view(graph);
  for (auto _ : state) {
    Graph conflict = build_conflict_graph(view);
    benchmark::DoNotOptimize(conflict.num_edges());
  }
}
BENCHMARK(BM_ConflictGraphBuild)->Arg(100)->Arg(300)->Arg(1000);

void BM_ConflictIndexBuild(benchmark::State& state) {
  const Graph graph = make_udg(static_cast<std::size_t>(state.range(0)), 8.0);
  const ArcView view(graph);
  for (auto _ : state) {
    const ConflictIndex index(view);
    benchmark::DoNotOptimize(index.total_conflicts());
  }
}
BENCHMARK(BM_ConflictIndexBuild)->Arg(100)->Arg(300)->Arg(1000);

void BM_ConflictIndexBuildParallel(benchmark::State& state) {
  const Graph graph = make_udg(static_cast<std::size_t>(state.range(0)), 8.0);
  const ArcView view(graph);
  ThreadPool& pool = bench_pool();
  for (auto _ : state) {
    const ConflictIndex index(view, pool);
    benchmark::DoNotOptimize(index.total_conflicts());
  }
}
BENCHMARK(BM_ConflictIndexBuildParallel)->Arg(100)->Arg(300)->Arg(1000);

void BM_ConflictGraphBuildIndexed(benchmark::State& state) {
  const Graph graph = make_udg(static_cast<std::size_t>(state.range(0)), 8.0);
  const ArcView view(graph);
  for (auto _ : state) {
    // Index build included: this is the end-to-end replacement for
    // BM_ConflictGraphBuild, which enumerates conflicts on the fly. The
    // sequential build keeps the comparison honest on single-core CI boxes;
    // BM_ConflictIndexBuildParallel measures the threaded build separately.
    const ConflictIndex index(view);
    Graph conflict = build_conflict_graph(view, index);
    benchmark::DoNotOptimize(conflict.num_edges());
  }
}
BENCHMARK(BM_ConflictGraphBuildIndexed)->Arg(100)->Arg(300)->Arg(1000);

void BM_GreedyColoringIndexed(benchmark::State& state) {
  const Graph graph = make_udg(static_cast<std::size_t>(state.range(0)), 8.0);
  const ArcView view(graph);
  const ConflictIndex index(view);
  for (auto _ : state) {
    ArcColoring coloring =
        greedy_coloring(view, GreedyOrder::kArcId, nullptr, &index);
    benchmark::DoNotOptimize(coloring.num_colors_used());
  }
  state.counters["edges"] = static_cast<double>(graph.num_edges());
}
BENCHMARK(BM_GreedyColoringIndexed)->Arg(100)->Arg(300)->Arg(1000);

void BM_FeasibilityCheck(benchmark::State& state) {
  const Graph graph = make_udg(static_cast<std::size_t>(state.range(0)), 8.0);
  const ArcView view(graph);
  const ArcColoring coloring = greedy_coloring(view);
  for (auto _ : state)
    benchmark::DoNotOptimize(is_feasible_schedule(view, coloring));
}
BENCHMARK(BM_FeasibilityCheck)->Arg(100)->Arg(300)->Arg(1000);

void BM_FeasibilityCheckIndexed(benchmark::State& state) {
  const Graph graph = make_udg(static_cast<std::size_t>(state.range(0)), 8.0);
  const ArcView view(graph);
  const ConflictIndex index(view);
  const ArcColoring coloring = greedy_coloring(view);
  for (auto _ : state)
    benchmark::DoNotOptimize(is_feasible_schedule(view, coloring, &index));
}
BENCHMARK(BM_FeasibilityCheckIndexed)->Arg(100)->Arg(300)->Arg(1000);

void BM_CountViolationsIndexed(benchmark::State& state) {
  const Graph graph = make_udg(static_cast<std::size_t>(state.range(0)), 8.0);
  const ArcView view(graph);
  const ConflictIndex index(view);
  // A deliberately clashing coloring (everything in slot 0) exercises the
  // counting path rather than the early-exit path.
  ArcColoring clashing(view.num_arcs());
  for (ArcId a = 0; a < view.num_arcs(); ++a) clashing.set(a, 0);
  for (auto _ : state)
    benchmark::DoNotOptimize(count_violations(view, clashing, &index));
}
BENCHMARK(BM_CountViolationsIndexed)->Arg(100)->Arg(300);

void BM_LowerBoundTheorem1(benchmark::State& state) {
  const Graph graph = make_udg(static_cast<std::size_t>(state.range(0)), 8.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(lower_bound_theorem1(graph));
}
BENCHMARK(BM_LowerBoundTheorem1)->Arg(100)->Arg(300)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
