// Microbenchmarks for the coloring core: conflict enumeration, greedy
// coloring, conflict-graph construction, feasibility checking.
#include <benchmark/benchmark.h>

#include "coloring/checker.h"
#include "coloring/conflict.h"
#include "coloring/conflict_graph.h"
#include "coloring/bounds.h"
#include "coloring/greedy.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "support/rng.h"

namespace {

using namespace fdlsp;

Graph make_udg(std::size_t n, double side) {
  Rng rng(42);
  return generate_udg(n, side, 0.5, rng).graph;
}

void BM_GreedyColoring(benchmark::State& state) {
  const Graph graph = make_udg(static_cast<std::size_t>(state.range(0)), 8.0);
  const ArcView view(graph);
  for (auto _ : state) {
    ArcColoring coloring = greedy_coloring(view);
    benchmark::DoNotOptimize(coloring.num_colors_used());
  }
  state.counters["edges"] = static_cast<double>(graph.num_edges());
}
BENCHMARK(BM_GreedyColoring)->Arg(100)->Arg(300)->Arg(1000);

void BM_ConflictEnumeration(benchmark::State& state) {
  const Graph graph = make_udg(static_cast<std::size_t>(state.range(0)), 8.0);
  const ArcView view(graph);
  for (auto _ : state) {
    std::size_t total = 0;
    for (ArcId a = 0; a < view.num_arcs(); ++a)
      total += conflicting_arcs(view, a).size();
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_ConflictEnumeration)->Arg(100)->Arg(300);

void BM_ConflictGraphBuild(benchmark::State& state) {
  const Graph graph = make_udg(static_cast<std::size_t>(state.range(0)), 8.0);
  const ArcView view(graph);
  for (auto _ : state) {
    Graph conflict = build_conflict_graph(view);
    benchmark::DoNotOptimize(conflict.num_edges());
  }
}
BENCHMARK(BM_ConflictGraphBuild)->Arg(100)->Arg(300);

void BM_FeasibilityCheck(benchmark::State& state) {
  const Graph graph = make_udg(static_cast<std::size_t>(state.range(0)), 8.0);
  const ArcView view(graph);
  const ArcColoring coloring = greedy_coloring(view);
  for (auto _ : state)
    benchmark::DoNotOptimize(is_feasible_schedule(view, coloring));
}
BENCHMARK(BM_FeasibilityCheck)->Arg(100)->Arg(300)->Arg(1000);

void BM_LowerBoundTheorem1(benchmark::State& state) {
  const Graph graph = make_udg(static_cast<std::size_t>(state.range(0)), 8.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(lower_bound_theorem1(graph));
}
BENCHMARK(BM_LowerBoundTheorem1)->Arg(100)->Arg(300)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
