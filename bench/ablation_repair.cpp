// Ablation: incremental repair vs full recompute under churn (the paper's
// future-work scenario). Measures per-event recoloring cost and long-run
// slot-count drift of the repaired schedule.
#include <iostream>

#include "algos/repair.h"
#include "coloring/checker.h"
#include "coloring/greedy.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "support/check.h"
#include "support/cli.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace fdlsp;
  const CliArgs args(argc, argv);
  const auto nodes = static_cast<std::size_t>(args.get_int("nodes", 100));
  const auto steps = static_cast<std::size_t>(args.get_int("steps", 60));
  const double side = args.get_double("side", 6.0);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 2)));

  auto positions = generate_udg(nodes, side, 1.0, rng).positions;
  Graph graph = udg_from_positions(positions, 1.0);
  ArcColoring coloring = greedy_coloring(ArcView(graph));

  Summary repair_touched, repair_slots, recompute_slots, slot_overhead;
  for (std::size_t step = 0; step < steps; ++step) {
    const std::size_t mover = rng.next_index(positions.size());
    positions[mover] = Point{rng.next_double() * side,
                             rng.next_double() * side};
    const Graph new_graph = udg_from_positions(positions, 1.0);
    const ArcView new_view(new_graph);

    ArcColoring transferred =
        transfer_coloring(ArcView(graph), coloring, new_view);
    RepairResult repaired = repair_schedule(new_view, std::move(transferred));
    FDLSP_REQUIRE(is_feasible_schedule(new_view, repaired.coloring),
                  "repair must stay feasible");
    const std::size_t fresh =
        greedy_coloring(new_view).num_colors_used();

    repair_touched.add(static_cast<double>(repaired.recolored_arcs));
    repair_slots.add(static_cast<double>(repaired.num_slots));
    recompute_slots.add(static_cast<double>(fresh));
    slot_overhead.add(fresh == 0 ? 0.0
                                 : static_cast<double>(repaired.num_slots) /
                                       static_cast<double>(fresh));

    graph = new_graph;
    coloring = std::move(repaired.coloring);
  }

  TextTable table({"metric", "value"});
  table.add_row({"arcs touched per event (repair)",
                 fmt_double(repair_touched.mean(), 1)});
  table.add_row({"arcs touched per event (recompute)",
                 fmt_double(static_cast<double>(2 * graph.num_edges()), 1)});
  table.add_row({"slots, repaired schedule", fmt_double(repair_slots.mean(), 1)});
  table.add_row({"slots, fresh recompute", fmt_double(recompute_slots.mean(), 1)});
  table.add_row({"slot overhead ratio", fmt_double(slot_overhead.mean(), 3)});
  std::cout << "== Ablation: incremental repair vs recompute (" << steps
            << " churn events) ==\n";
  table.print(std::cout);
  std::cout << "(repair trades a bounded slot-count overhead for orders of "
               "magnitude less recoloring work)\n";
  return 0;
}
