#include "bench_common.h"

#include <iostream>

#include "exp/report.h"

namespace fdlsp::bench {

FigureConfig parse_figure_args(int argc, const char* const* argv,
                               std::vector<SchedulerKind> kinds) {
  const CliArgs args(argc, argv);
  FigureConfig config;
  config.run.kinds = std::move(kinds);
  config.run.instances =
      static_cast<std::size_t>(args.get_int("instances", 15));
  config.run.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  config.csv_path = args.get("csv", "");
  config.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  return config;
}

namespace {

void emit(const FigureConfig& config, const std::string& title,
          const TextTable& table) {
  print_report(std::cout, title, table);
  if (!config.csv_path.empty()) write_csv(config.csv_path, table);
}

}  // namespace

int run_udg_slots_figure(const std::string& title, double side, int argc,
                         const char* const* argv) {
  const FigureConfig config = parse_figure_args(
      argc, argv,
      {SchedulerKind::kDistMisGbg, SchedulerKind::kDfs, SchedulerKind::kDmgc});
  ThreadPool pool(config.threads);
  std::vector<PointResult> points;
  for (const UdgPoint& point : udg_series(side))
    points.push_back(run_udg_point(point, config.run, pool));
  emit(config, title, slots_table(points, config.run.kinds));
  return 0;
}

int run_general_slots_figure(const std::string& title, std::size_t nodes,
                             int argc, const char* const* argv) {
  const FigureConfig config =
      parse_figure_args(argc, argv,
                        {SchedulerKind::kDistMisGeneral, SchedulerKind::kDfs,
                         SchedulerKind::kDmgc});
  ThreadPool pool(config.threads);
  std::vector<PointResult> points;
  for (const GeneralPoint& point : general_series(nodes))
    points.push_back(run_general_point(point, config.run, pool));
  emit(config, title, slots_table(points, config.run.kinds));
  return 0;
}

int run_general_rounds_figure(const std::string& title, std::size_t nodes,
                              int argc, const char* const* argv) {
  const FigureConfig config =
      parse_figure_args(argc, argv, {SchedulerKind::kDistMisGeneral});
  ThreadPool pool(config.threads);
  std::vector<PointResult> points;
  for (const GeneralPoint& point : general_series(nodes))
    points.push_back(run_general_point(point, config.run, pool));
  emit(config, title,
       rounds_table(points, SchedulerKind::kDistMisGeneral));
  return 0;
}

}  // namespace fdlsp::bench
