// Figure 10: as Figure 8 with a 20x20 plan.
#include "bench_common.h"

int main(int argc, char** argv) {
  return fdlsp::bench::run_udg_slots_figure(
      "Figure 10: time slots, UDG plan 20x20", 20.0, argc, argv);
}
