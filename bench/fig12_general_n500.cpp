// Figure 12: as Figure 11 with 500 nodes.
#include "bench_common.h"

int main(int argc, char** argv) {
  return fdlsp::bench::run_general_slots_figure(
      "Figure 12: time slots, general graphs, 500 nodes", 500, argc, argv);
}
