// Motivation experiment (Section 1): link scheduling vs broadcast
// scheduling. Broadcast scheduling forbids all distance-2 concurrency and
// keeps every neighbor's radio on; link scheduling reuses slots across
// distance-1/2 neighbors when directions permit and wakes only intended
// receivers. This bench quantifies both claims on UDG fields.
#include <iostream>

#include "algos/broadcast.h"
#include "coloring/greedy.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "support/cli.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"
#include "tdma/energy.h"
#include "tdma/schedule.h"

int main(int argc, char** argv) {
  using namespace fdlsp;
  const CliArgs args(argc, argv);
  const auto instances =
      static_cast<std::size_t>(args.get_int("instances", 15));
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));

  TextTable table({"n", "avg-degree", "link slots", "bcast slots",
                   "link tx/slot", "bcast tx/slot", "link duty%",
                   "bcast duty%"});
  for (std::size_t n : {50u, 100u, 200u}) {
    Summary degree, link_slots, bcast_slots, link_conc, bcast_conc,
        link_duty, bcast_duty;
    for (std::size_t i = 0; i < instances; ++i) {
      const Graph graph = generate_udg(n, 7.5, 0.5, rng).graph;
      if (graph.num_edges() == 0) continue;
      degree.add(graph.average_degree());

      const ArcView view(graph);
      const TdmaSchedule link(view, greedy_coloring(view));
      link_slots.add(static_cast<double>(link.frame_length()));
      link_conc.add(static_cast<double>(view.num_arcs()) /
                    static_cast<double>(link.frame_length()));
      link_duty.add(account_energy(link).mean_duty_cycle);

      const BroadcastSchedule broadcast = broadcast_schedule_greedy(graph);
      const BroadcastMetrics metrics = broadcast_metrics(graph, broadcast);
      bcast_slots.add(static_cast<double>(metrics.frame_length));
      bcast_conc.add(metrics.concurrency);
      bcast_duty.add(metrics.mean_duty_cycle);
    }
    table.add_row({std::to_string(n), fmt_double(degree.mean(), 2),
                   fmt_double(link_slots.mean(), 1),
                   fmt_double(bcast_slots.mean(), 1),
                   fmt_double(link_conc.mean(), 2),
                   fmt_double(bcast_conc.mean(), 2),
                   fmt_double(100 * link_duty.mean(), 1),
                   fmt_double(100 * bcast_duty.mean(), 1)});
  }
  std::cout << "== Motivation: link vs broadcast scheduling (Section 1) ==\n";
  table.print(std::cout);
  std::cout << "(link frames are longer — every directed link gets a slot — "
               "but pack more simultaneous transmitters per slot and let "
               "radios sleep far more)\n";
  return 0;
}
