// Microbenchmarks for topology generators and graph utilities.
#include <benchmark/benchmark.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "support/rng.h"

namespace {

using namespace fdlsp;

void BM_GenerateUdg(benchmark::State& state) {
  Rng rng(7);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    GeometricGraph geo = generate_udg(n, 15.0, 0.5, rng);
    benchmark::DoNotOptimize(geo.graph.num_edges());
  }
}
BENCHMARK(BM_GenerateUdg)->Arg(100)->Arg(300)->Arg(1000)->Arg(10000);

void BM_GenerateGnm(benchmark::State& state) {
  Rng rng(7);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Graph graph = generate_gnm(n, 4 * n, rng);
    benchmark::DoNotOptimize(graph.num_edges());
  }
}
BENCHMARK(BM_GenerateGnm)->Arg(200)->Arg(500)->Arg(2000);

void BM_ConnectedComponents(benchmark::State& state) {
  Rng rng(7);
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph graph = generate_gnm(n, 2 * n, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(connected_components(graph).size());
}
BENCHMARK(BM_ConnectedComponents)->Arg(200)->Arg(2000);

void BM_CountTriangles(benchmark::State& state) {
  Rng rng(7);
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph graph = generate_gnm(n, 8 * n, rng);
  for (auto _ : state) benchmark::DoNotOptimize(count_triangles(graph));
}
BENCHMARK(BM_CountTriangles)->Arg(200)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
