// Microbenchmarks for the continuous-operation soak harness: per-event
// repair latency percentiles, slots churned per event, repair vs recompute
// wall time on the same stream, and the incremental ConflictIndex patch vs
// a fresh rebuild.
//
// tools/bench_smoke.sh runs this suite and commits BENCH_soak.json as the
// regression baseline; tools/ci.sh bench-compare diffs fresh runs against
// it with a tolerance band.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "coloring/conflict_index.h"
#include "graph/arcs.h"
#include "soak/driver.h"
#include "soak/topology.h"

namespace {

using namespace fdlsp;

SoakSpec bench_spec(std::size_t n, std::uint64_t events) {
  SoakSpec spec;
  spec.seed = 17;
  spec.n = n;
  spec.events = events;
  // Side grows with sqrt(n) so density (and the Lemma-6 bound) stays put
  // across the size sweep.
  spec.side = 0.9 * std::sqrt(static_cast<double>(n));
  return spec;
}

/// One whole soak stream per iteration under the default cost model.
/// Counters carry the steady-state health metrics: repair-latency
/// percentiles, slots churned per event, and the recompute fraction.
void BM_SoakStream(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto events = static_cast<std::uint64_t>(state.range(1));
  const SoakSpec spec = bench_spec(n, events);
  SoakStats last;
  for (auto _ : state) {
    SoakDriver driver(spec);
    driver.run();
    benchmark::DoNotOptimize(driver.coloring().raw().data());
    last = driver.stats();
  }
  const auto scheduled =
      static_cast<double>(last.repairs + last.recomputes);
  state.counters["p50_us"] = soak_percentile(last.event_micros, 50.0);
  state.counters["p99_us"] = soak_percentile(last.event_micros, 99.0);
  state.counters["churn_per_event"] =
      scheduled > 0.0 ? static_cast<double>(last.total_recolored) / scheduled
                      : 0.0;
  state.counters["recompute_frac"] =
      scheduled > 0.0 ? static_cast<double>(last.recomputes) / scheduled : 0.0;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_SoakStream)
    ->Args({64, 500})
    ->Args({256, 500})
    ->Args({1000, 500})
    ->Unit(benchmark::kMillisecond);

/// The same stream forced through one strategy, isolating what the cost
/// model is trading: ball-local repair vs full recompute per event.
void BM_SoakForcedStrategy(benchmark::State& state) {
  const bool recompute = state.range(1) != 0;
  const SoakSpec spec =
      bench_spec(static_cast<std::size_t>(state.range(0)), 300);
  SoakOptions options;
  options.cost_model = [recompute](const SoakCostContext&) {
    return recompute ? SoakAction::kRecompute : SoakAction::kRepair;
  };
  SoakStats last;
  for (auto _ : state) {
    SoakDriver driver(spec, options);
    driver.run();
    benchmark::DoNotOptimize(driver.coloring().raw().data());
    last = driver.stats();
  }
  state.counters["p50_us"] = soak_percentile(last.event_micros, 50.0);
  state.counters["p99_us"] = soak_percentile(last.event_micros, 99.0);
  state.SetLabel(recompute ? "recompute" : "repair");
}
BENCHMARK(BM_SoakForcedStrategy)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Unit(benchmark::kMillisecond);

/// Incremental ConflictIndex patch after one churn event vs rebuilding the
/// index from scratch on the same post-event graph — the speedup that makes
/// per-event maintenance affordable.
/// Endpoints of the edge symmetric difference — what the driver hands the
/// incremental constructor after each event.
std::vector<NodeId> touched_endpoints(const Graph& old_graph,
                                      const Graph& new_graph) {
  std::vector<NodeId> touched;
  const auto lex_less = [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  };
  const std::span<const Edge> old_edges = old_graph.edges();
  const std::span<const Edge> new_edges = new_graph.edges();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < old_edges.size() || j < new_edges.size()) {
    const bool take_old =
        j == new_edges.size() ||
        (i < old_edges.size() && lex_less(old_edges[i], new_edges[j]));
    const bool take_new =
        !take_old &&
        (i == old_edges.size() || lex_less(new_edges[j], old_edges[i]));
    if (take_old || take_new) {
      const Edge& e = take_old ? old_edges[i] : new_edges[j];
      touched.push_back(e.u);
      touched.push_back(e.v);
      ++(take_old ? i : j);
    } else {
      ++i;
      ++j;
    }
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  return touched;
}

/// The first edge-changing event of the spec's stream: (pre-event graph,
/// post-event graph, touched endpoints).
struct ChurnedPair {
  Graph old_graph;
  Graph new_graph;
  std::vector<NodeId> touched;
};

ChurnedPair first_churned_event(const SoakSpec& spec) {
  DynamicTopology topo(spec);
  for (std::uint64_t e = 0;; ++e) {
    Graph old_graph = topo.graph();
    topo.apply(e);
    std::vector<NodeId> touched = touched_endpoints(old_graph, topo.graph());
    if (!touched.empty())
      return {std::move(old_graph), topo.graph(), std::move(touched)};
  }
}

void BM_ConflictIndexIncremental(benchmark::State& state) {
  const SoakSpec spec =
      bench_spec(static_cast<std::size_t>(state.range(0)), 4);
  const ChurnedPair churn = first_churned_event(spec);
  const ConflictIndex old_index{ArcView(churn.old_graph)};
  const ArcView view(churn.new_graph);
  for (auto _ : state) {
    ConflictIndex next(view, churn.old_graph, old_index, churn.touched);
    benchmark::DoNotOptimize(next.raw_neighbors().data());
  }
}
BENCHMARK(BM_ConflictIndexIncremental)->Arg(256)->Arg(1000);

void BM_ConflictIndexFresh(benchmark::State& state) {
  const SoakSpec spec =
      bench_spec(static_cast<std::size_t>(state.range(0)), 4);
  const ChurnedPair churn = first_churned_event(spec);
  const ArcView view(churn.new_graph);
  for (auto _ : state) {
    ConflictIndex fresh(view);
    benchmark::DoNotOptimize(fresh.raw_neighbors().data());
  }
}
BENCHMARK(BM_ConflictIndexFresh)->Arg(256)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
