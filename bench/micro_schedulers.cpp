// Microbenchmarks for end-to-end scheduler runs on fixed workloads.
#include <benchmark/benchmark.h>

#include "algos/scheduler.h"
#include "exp/workloads.h"
#include "graph/generators.h"
#include "support/rng.h"

namespace {

using namespace fdlsp;

Graph fixed_udg() {
  Rng rng(11);
  return generate_udg(150, 8.0, 0.5, rng).graph;
}

Graph fixed_gnm() {
  Rng rng(11);
  return generate_gnm(150, 600, rng);
}

void BM_DistMisGbg(benchmark::State& state) {
  const Graph graph = fixed_udg();
  std::uint64_t seed = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        run_scheduler(SchedulerKind::kDistMisGbg, graph, seed++).num_slots);
}
BENCHMARK(BM_DistMisGbg);

void BM_DistMisGeneral(benchmark::State& state) {
  const Graph graph = fixed_gnm();
  std::uint64_t seed = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        run_scheduler(SchedulerKind::kDistMisGeneral, graph, seed++)
            .num_slots);
}
BENCHMARK(BM_DistMisGeneral);

void BM_DfsSchedule(benchmark::State& state) {
  const Graph graph = fixed_udg();
  std::uint64_t seed = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        run_scheduler_on_components(SchedulerKind::kDfs, graph, seed++)
            .num_slots);
}
BENCHMARK(BM_DfsSchedule);

void BM_Dmgc(benchmark::State& state) {
  const Graph graph = fixed_gnm();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        run_scheduler(SchedulerKind::kDmgc, graph, 1).num_slots);
}
BENCHMARK(BM_Dmgc);

void BM_GreedyReference(benchmark::State& state) {
  const Graph graph = fixed_gnm();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        run_scheduler(SchedulerKind::kGreedy, graph, 1).num_slots);
}
BENCHMARK(BM_GreedyReference);

}  // namespace

BENCHMARK_MAIN();
