// Tests for the D-MGC baseline.
#include <gtest/gtest.h>

#include "algos/dmgc.h"
#include "coloring/bounds.h"
#include "coloring/checker.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "support/rng.h"

namespace fdlsp {
namespace {

void expect_valid_schedule(const Graph& graph, const ScheduleResult& result) {
  const ArcView view(graph);
  EXPECT_TRUE(is_feasible_schedule(view, result.coloring));
  EXPECT_EQ(result.num_slots, result.coloring.num_colors_used());
  if (graph.num_edges() > 0) {
    EXPECT_GE(result.num_slots, lower_bound_trivial(graph));
  }
}

TEST(Dmgc, SingleEdge) {
  const Graph graph = generate_path(2);
  const auto result = run_dmgc(graph);
  expect_valid_schedule(graph, result);
  EXPECT_EQ(result.num_slots, 2u);
}

TEST(Dmgc, EdgelessGraph) {
  const auto result = run_dmgc(Graph(3));
  EXPECT_EQ(result.num_slots, 0u);
}

TEST(Dmgc, FixedTopologies) {
  for (const Graph& graph :
       {generate_path(7), generate_cycle(8), generate_cycle(9),
        generate_star(9), generate_grid(4, 4), generate_complete(5),
        generate_complete_bipartite(3, 4)}) {
    const auto result = run_dmgc(graph);
    expect_valid_schedule(graph, result);
  }
}

TEST(Dmgc, PhaseStatsReported) {
  DmgcStats stats;
  const Graph graph = generate_complete(6);
  const auto result = run_dmgc(graph, &stats);
  expect_valid_schedule(graph, result);
  EXPECT_GE(stats.edge_colors, graph.max_degree());
  EXPECT_LE(stats.edge_colors, graph.max_degree() + 1);
  EXPECT_GT(stats.estimated_rounds, 0u);
  EXPECT_EQ(result.rounds, stats.estimated_rounds);
}

TEST(Dmgc, SlotCountAtLeastDoubleEdgeColors) {
  // The doubling construction cannot use fewer than 2 * (Δ+1)-ish slots.
  Rng rng(301);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph graph = generate_gnm(25, 60, rng);
    DmgcStats stats;
    const auto result = run_dmgc(graph, &stats);
    expect_valid_schedule(graph, result);
    if (graph.num_edges() > 0) {
      EXPECT_GE(result.num_slots, 2 * graph.max_degree());
    }
  }
}

TEST(Dmgc, RandomGraphSweep) {
  Rng rng(303);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 6 + rng.next_index(35);
    const std::size_t m = rng.next_index(3 * n);
    const std::size_t max_m = n * (n - 1) / 2;
    const Graph graph = generate_gnm(n, std::min(m, max_m), rng);
    const auto result = run_dmgc(graph);
    expect_valid_schedule(graph, result);
  }
}

TEST(Dmgc, UdgSweep) {
  Rng rng(307);
  for (int trial = 0; trial < 4; ++trial) {
    const auto geo = generate_udg(70, 5.0, 0.6, rng);
    const auto result = run_dmgc(geo.graph);
    expect_valid_schedule(geo.graph, result);
  }
}

TEST(Dmgc, DeterministicOutput) {
  Rng rng(311);
  const Graph graph = generate_gnm(20, 45, rng);
  const auto a = run_dmgc(graph);
  const auto b = run_dmgc(graph);
  EXPECT_EQ(a.coloring.raw(), b.coloring.raw());
}

}  // namespace
}  // namespace fdlsp
