// Tests for the 2-SAT solver.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "algos/two_sat.h"
#include "support/rng.h"

namespace fdlsp {
namespace {

TEST(TwoSat, SatisfiableChain) {
  TwoSat sat(3);
  sat.add_clause(0, true, 1, true);
  sat.add_clause(1, false, 2, true);
  sat.add_clause(0, false, 2, false);
  const auto result = sat.solve();
  ASSERT_TRUE(result.has_value());
  const auto& x = *result;
  EXPECT_TRUE(x[0] || x[1]);
  EXPECT_TRUE(!x[1] || x[2]);
  EXPECT_TRUE(!x[0] || !x[2]);
}

TEST(TwoSat, UnitClausesForce) {
  TwoSat sat(2);
  sat.add_unit(0, true);
  sat.add_unit(1, false);
  const auto result = sat.solve();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE((*result)[0]);
  EXPECT_FALSE((*result)[1]);
}

TEST(TwoSat, ContradictionIsUnsat) {
  TwoSat sat(1);
  sat.add_unit(0, true);
  sat.add_unit(0, false);
  EXPECT_FALSE(sat.solve().has_value());
}

TEST(TwoSat, ImplicationCycleUnsat) {
  // (a ∨ b)(¬a ∨ b)(a ∨ ¬b)(¬a ∨ ¬b) is unsatisfiable.
  TwoSat sat(2);
  sat.add_clause(0, true, 1, true);
  sat.add_clause(0, false, 1, true);
  sat.add_clause(0, true, 1, false);
  sat.add_clause(0, false, 1, false);
  EXPECT_FALSE(sat.solve().has_value());
}

TEST(TwoSat, EmptyInstanceIsSat) {
  TwoSat sat(4);
  EXPECT_TRUE(sat.solve().has_value());
}

TEST(TwoSat, RandomInstancesAgreeWithBruteForce) {
  Rng rng(61);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 2 + rng.next_index(6);
    const std::size_t clauses = rng.next_index(12);
    std::vector<std::array<std::size_t, 4>> clause_list;
    TwoSat sat(n);
    for (std::size_t k = 0; k < clauses; ++k) {
      const std::size_t a = rng.next_index(n);
      const std::size_t b = rng.next_index(n);
      const bool va = rng.next_bool(0.5);
      const bool vb = rng.next_bool(0.5);
      sat.add_clause(a, va, b, vb);
      clause_list.push_back({a, va ? 1u : 0u, b, vb ? 1u : 0u});
    }
    // Brute force satisfiability.
    bool brute_sat = false;
    for (std::size_t mask = 0; mask < (1u << n) && !brute_sat; ++mask) {
      bool all = true;
      for (const auto& c : clause_list) {
        const bool lit_a = ((mask >> c[0]) & 1) == c[1];
        const bool lit_b = ((mask >> c[2]) & 1) == c[3];
        if (!lit_a && !lit_b) {
          all = false;
          break;
        }
      }
      brute_sat = all;
    }
    const auto solved = sat.solve();
    EXPECT_EQ(solved.has_value(), brute_sat) << "trial " << trial;
    if (solved) {
      for (const auto& c : clause_list) {
        const bool lit_a = (*solved)[c[0]] == (c[1] != 0);
        const bool lit_b = (*solved)[c[2]] == (c[3] != 0);
        EXPECT_TRUE(lit_a || lit_b);
      }
    }
  }
}

}  // namespace
}  // namespace fdlsp
