// Cross-module edge cases and paper-figure constructions that don't fit the
// per-module suites.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "coloring/bounds.h"
#include "coloring/checker.h"
#include "coloring/conflict.h"
#include "coloring/greedy.h"
#include "exp/report.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "support/cli.h"
#include "support/rng.h"
#include "tdma/schedule.h"

namespace fdlsp {
namespace {

TEST(UdgFromPositions, HandlesNegativeCoordinates) {
  // Churn can move nodes anywhere; the grid bucketing must not assume a
  // positive quadrant.
  const std::vector<Point> positions{{-3.0, -3.0}, {-2.6, -3.0}, {5.0, 5.0}};
  const Graph graph = udg_from_positions(positions, 0.5);
  EXPECT_TRUE(graph.has_edge(0, 1));
  EXPECT_FALSE(graph.has_edge(0, 2));
  EXPECT_FALSE(graph.has_edge(1, 2));
}

TEST(UdgFromPositions, CoincidentPointsAreLinked) {
  const std::vector<Point> positions{{1.0, 1.0}, {1.0, 1.0}};
  const Graph graph = udg_from_positions(positions, 0.5);
  EXPECT_TRUE(graph.has_edge(0, 1));
}

TEST(UdgFromPositions, EmptyInput) {
  const Graph graph = udg_from_positions({}, 0.5);
  EXPECT_EQ(graph.num_nodes(), 0u);
}

TEST(ArcColoring, RejectsNegativeColor) {
  ArcColoring coloring(1);
  EXPECT_THROW(coloring.set(0, -2), contract_error);
}

TEST(Checker, WitnessIsRealConflict) {
  Rng rng(41);
  const Graph graph = generate_gnm(15, 35, rng);
  const ArcView view(graph);
  // Deliberately break a feasible coloring and check the witness quality.
  ArcColoring coloring = greedy_coloring(view);
  // Recolor some arc to collide with the first arc's color.
  for (ArcId a = 1; a < view.num_arcs(); ++a) {
    if (arcs_conflict(view, 0, a)) {
      coloring.set(a, coloring.color(0));
      break;
    }
  }
  const auto witness = find_violation(view, coloring);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(arcs_conflict(view, witness->a, witness->b));
  EXPECT_EQ(coloring.color(witness->a), coloring.color(witness->b));
}

TEST(Bounds, PaperFigure3ClusterConstruction) {
  // Cluster center v with common edge (v, w): three size-3 cliques (vwx,
  // vwr, vwz), one joint edge (x, r) forming a joint clique with 1 edge,
  // plus an extra pendant u on v. Theorem 1 gives 2*(deg v + 3 + 1) = 18.
  GraphBuilder builder(6);  // v=0 w=1 x=2 r=3 z=4 u=5
  builder.add_edge(0, 1);
  builder.add_edge(0, 2);
  builder.add_edge(0, 3);
  builder.add_edge(0, 4);
  builder.add_edge(0, 5);
  builder.add_edge(1, 2);
  builder.add_edge(1, 3);
  builder.add_edge(1, 4);
  builder.add_edge(2, 3);  // joint edge
  const Graph graph = builder.build();
  EXPECT_EQ(graph.degree(0), 5u);
  EXPECT_EQ(lower_bound_theorem1(graph), 18u);
}

TEST(Bounds, DisconnectedGraphTakesMaxOverComponents) {
  GraphBuilder builder(7);
  builder.add_edge(0, 1);            // component A: one edge, LB 2
  builder.add_edge(2, 3);            // component B: triangle, LB 6
  builder.add_edge(3, 4);
  builder.add_edge(2, 4);
  const Graph graph = builder.build();
  EXPECT_EQ(lower_bound_theorem1(graph), 6u);
}

TEST(TdmaSchedule, RoleQueryOutOfRangeThrows) {
  const Graph path = generate_path(2);
  const ArcView view(path);
  const TdmaSchedule schedule(view, greedy_coloring(view));
  EXPECT_THROW(schedule.role(5, 0), contract_error);
  EXPECT_THROW(schedule.role(0, 99), contract_error);
}

TEST(Report, WriteCsvRoundTrip) {
  TextTable table({"a", "b"});
  table.add_row({"1", "2"});
  const std::string path = "/tmp/fdlsp_report_test.csv";
  write_csv(path, table);
  std::ifstream file(path);
  std::stringstream content;
  content << file.rdbuf();
  EXPECT_EQ(content.str(), "a,b\n1,2\n");
  std::remove(path.c_str());
}

TEST(CliArgs, LastDuplicateWins) {
  const char* argv[] = {"prog", "--n=1", "--n=2"};
  const CliArgs args(3, argv);
  EXPECT_EQ(args.get_int("n", 0), 2);
}

TEST(Conflict, ReverseArcsAlwaysConflict) {
  Rng rng(43);
  const Graph graph = generate_gnm(20, 40, rng);
  const ArcView view(graph);
  for (EdgeId e = 0; e < graph.num_edges(); ++e)
    EXPECT_TRUE(arcs_conflict(view, static_cast<ArcId>(2 * e),
                              static_cast<ArcId>(2 * e + 1)));
}

TEST(Conflict, InvarianceUnderDoubleReversal) {
  // The D-MGC doubling construction relies on conflict(a,b) ==
  // conflict(rev a, rev b); verify exhaustively on a random graph.
  Rng rng(47);
  const Graph graph = generate_gnm(14, 30, rng);
  const ArcView view(graph);
  for (ArcId a = 0; a < view.num_arcs(); ++a)
    for (ArcId b = a + 1; b < view.num_arcs(); ++b)
      EXPECT_EQ(arcs_conflict(view, a, b),
                arcs_conflict(view, ArcView::reverse(a), ArcView::reverse(b)))
          << a << " " << b;
}

TEST(Greedy, ColorSpanEqualsColorCount) {
  // Smallest-feasible greedy never leaves gaps in the color range.
  Rng rng(53);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph graph = generate_gnm(20, 45, rng);
    const ArcView view(graph);
    const ArcColoring coloring = greedy_coloring(view);
    EXPECT_EQ(coloring.num_colors_used(), coloring.color_span());
  }
}

}  // namespace
}  // namespace fdlsp
