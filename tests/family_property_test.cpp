// Parameterized property sweeps across topology families: the conflict
// machinery, bounds, exact optimum, and every scheduler agree on the
// fundamental invariants regardless of graph shape.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "algos/scheduler.h"
#include "coloring/bounds.h"
#include "coloring/checker.h"
#include "coloring/conflict.h"
#include "coloring/exact.h"
#include "coloring/greedy.h"
#include "graph/algorithms.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "support/rng.h"

namespace fdlsp {
namespace {

struct Family {
  std::string name;
  std::function<Graph(Rng&)> make;
};

class FamilyTest : public ::testing::TestWithParam<Family> {};

TEST_P(FamilyTest, ConflictEnumerationMatchesPredicate) {
  Rng rng(11);
  const Graph graph = GetParam().make(rng);
  const ArcView view(graph);
  for (ArcId a = 0; a < view.num_arcs(); ++a) {
    const auto enumerated = conflicting_arcs(view, a);
    std::size_t reference = 0;
    for (ArcId b = 0; b < view.num_arcs(); ++b)
      if (b != a && arcs_conflict(view, a, b)) ++reference;
    EXPECT_EQ(enumerated.size(), reference) << GetParam().name << " arc " << a;
  }
}

TEST_P(FamilyTest, GreedySandwichedByBounds) {
  Rng rng(13);
  const Graph graph = GetParam().make(rng);
  if (graph.num_edges() == 0) return;
  const ArcView view(graph);
  const ArcColoring coloring = greedy_coloring(view);
  ASSERT_TRUE(is_feasible_schedule(view, coloring));
  EXPECT_GE(coloring.num_colors_used(), lower_bound_theorem1(graph));
  EXPECT_LE(coloring.num_colors_used(), upper_bound_colors(graph));
}

TEST_P(FamilyTest, TheoremOneLowerBoundNeverExceedsOptimum) {
  // The LB proof must hold against the true optimum, not just heuristics.
  Rng rng(17);
  const Graph graph = GetParam().make(rng);
  if (graph.num_edges() == 0 || graph.num_edges() > 12) return;  // exact-only
  const auto exact = optimal_fdlsp(ArcView(graph));
  ASSERT_TRUE(exact.optimal);
  EXPECT_GE(exact.num_colors, lower_bound_theorem1(graph))
      << GetParam().name;
}

TEST_P(FamilyTest, AllDistributedSchedulersFeasible) {
  Rng rng(19);
  const Graph graph = GetParam().make(rng);
  for (SchedulerKind kind :
       {SchedulerKind::kDistMisGbg, SchedulerKind::kDistMisGeneral,
        SchedulerKind::kDmgc, SchedulerKind::kRandomized}) {
    const auto result = run_scheduler(kind, graph, 23);
    EXPECT_TRUE(is_feasible_schedule(ArcView(graph), result.coloring))
        << GetParam().name << " / " << scheduler_name(kind);
  }
  if (is_connected(graph) && graph.num_nodes() > 0) {
    const auto dfs = run_scheduler(SchedulerKind::kDfs, graph, 23);
    EXPECT_TRUE(is_feasible_schedule(ArcView(graph), dfs.coloring));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, FamilyTest,
    ::testing::Values(
        Family{"path", [](Rng&) { return generate_path(10); }},
        Family{"even_cycle", [](Rng&) { return generate_cycle(10); }},
        Family{"odd_cycle", [](Rng&) { return generate_cycle(9); }},
        Family{"star", [](Rng&) { return generate_star(9); }},
        Family{"complete", [](Rng&) { return generate_complete(6); }},
        Family{"bipartite",
               [](Rng&) { return generate_complete_bipartite(3, 4); }},
        Family{"grid", [](Rng&) { return generate_grid(4, 4); }},
        Family{"tree",
               [](Rng& rng) { return generate_random_tree(20, rng); }},
        Family{"sparse_gnm",
               [](Rng& rng) { return generate_gnm(25, 30, rng); }},
        Family{"dense_gnm",
               [](Rng& rng) { return generate_gnm(15, 70, rng); }},
        Family{"udg",
               [](Rng& rng) {
                 return generate_udg(40, 4.0, 0.7, rng).graph;
               }},
        Family{"quasi_udg",
               [](Rng& rng) {
                 return generate_quasi_udg(40, 4.0, 0.7, 0.5, 0.5, rng).graph;
               }}),
    [](const auto& param_info) { return param_info.param.name; });

}  // namespace
}  // namespace fdlsp
