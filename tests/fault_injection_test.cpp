// Property-based fault-injection sweep (the `faulttest` battery).
//
// Every distributed scheduler × all six graph families × the fault-plan
// classes (bounded loss, duplication+corruption, crashes, link churn) ×
// the three async delay models, judged by the fault-aware oracles:
// fault-quiescence (hardened runs terminate with a feasible, deterministic
// schedule outside the faulted region) and recovery-locality (dist_repair
// heals crash/churn orphans touching only the distance-2 neighborhood).
// The last tests pin the delta-debugging story: a seeded failing fault
// plan shrinks to a minimal (graph, spec) pair with a replayable repro
// string.
//
// The per-scenario sweeps ride the sharded run_scenarios driver
// (verify/differential.h): batches fan out across a ThreadPool while
// failure reporting stays lowest-index-first, identical to serial.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algos/dfs_schedule.h"
#include "algos/dist_repair.h"
#include "algos/scheduler.h"
#include "coloring/checker.h"
#include "graph/algorithms.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "sim/delay.h"
#include "sim/fault.h"
#include "support/thread_pool.h"
#include "verify/differential.h"
#include "verify/fault_oracles.h"
#include "verify/scenario.h"

namespace fdlsp {
namespace {

/// One pool for the whole battery; workers idle between tests.
ThreadPool& sweep_pool() {
  static ThreadPool pool(4);
  return pool;
}

constexpr std::size_t kScenariosPerClass = 18;  // 3 per family
constexpr std::size_t kMaxNodes = 12;

/// The fault-plan classes the sweep crosses with every scenario.
std::vector<FaultSpec> fault_classes(std::uint64_t seed) {
  FaultSpec loss;
  loss.seed = seed;
  loss.drop_rate = 0.2;

  FaultSpec noise;
  noise.seed = seed;
  noise.duplicate_rate = 0.15;
  noise.corrupt_rate = 0.1;

  FaultSpec crash;
  crash.seed = seed;
  crash.drop_rate = 0.05;
  crash.crash_fraction = 0.2;

  FaultSpec churn;
  churn.seed = seed;
  churn.link_down_fraction = 0.3;
  churn.link_down_duration = 3.0;

  return {loss, noise, crash, churn};
}

/// The correlated-loss classes (issue 9): Gilbert–Elliott bursts, the PRR
/// matrix, region outages, and a mixed plan arming all three on top of
/// i.i.d. loss. Judged by the graceful-degradation oracles below rather
/// than plain quiescence.
std::vector<FaultSpec> correlated_classes(std::uint64_t seed) {
  FaultSpec burst;
  burst.seed = seed;
  burst.burst_rate = 0.25;
  burst.burst_recover = 0.25;
  burst.burst_loss = 0.9;

  FaultSpec prr;
  prr.seed = seed;
  prr.prr_levels = {0.9, 0.7, 0.5};

  FaultSpec region;
  region.seed = seed;
  region.region_count = 2;
  region.region_radius = 0.4;
  region.region_horizon = 12.0;
  region.region_duration = 4.0;

  FaultSpec mixed;
  mixed.seed = seed;
  mixed.drop_rate = 0.1;
  mixed.burst_rate = 0.15;
  mixed.prr_levels = {0.8};
  mixed.region_count = 1;

  return {burst, prr, region, mixed};
}

class FaultSweep : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(FaultSweep, HardenedRunsPassFaultOracles) {
  const SchedulerKind kind = GetParam();
  const bool needs_connected = kind == SchedulerKind::kDfs;
  const std::uint64_t base_seed =
      0xfa171ULL * (static_cast<std::uint64_t>(kind) + 1) + 3;
  const std::vector<Scenario> scenarios =
      sample_scenarios(kScenariosPerClass, base_seed, kMaxNodes);

  const ScenarioCheckFn check = [kind, needs_connected](
                                    const Scenario& scenario, std::size_t) {
    ScenarioOutcome outcome;
    const Graph graph = materialize(scenario);
    if (needs_connected && !is_connected(graph)) return outcome;
    for (const FaultSpec& spec : fault_classes(scenario.seed + 1)) {
      // A token-passing traversal cannot survive its token holder
      // fail-stopping: the guarantee for DFS under crash plans is graceful
      // degradation — the run returns (give-up + watchdog, no hang),
      // deterministically, and whatever it did color obeys the scoped
      // feasibility contract.
      if (kind == SchedulerKind::kDfs && spec.crash_fraction > 0.0) {
        const ScheduleResult first = run_scheduler_faulted(
            kind, graph, scenario.seed, spec, /*reliable=*/true);
        const ScheduleResult second = run_scheduler_faulted(
            kind, graph, scenario.seed, spec, /*reliable=*/true);
        if (first.completed != second.completed ||
            first.messages != second.messages)
          outcome.failures.push_back(
              "crash-plan rerun diverged\nrepro: " +
              fault_repro_command(scenario, scheduler_name(kind), spec));
        if (first.completed) {
          const OracleVerdict verdict =
              check_fault_result(graph, first, &spec);
          if (!verdict.ok)
            outcome.failures.push_back(
                verdict.failure + "\nrepro: " +
                fault_repro_command(scenario, scheduler_name(kind), spec));
        }
        ++outcome.checks;
        continue;
      }
      const OracleVerdict verdict =
          check_fault_quiescence(kind, graph, scenario.seed, spec);
      if (!verdict.ok)
        outcome.failures.push_back(
            verdict.failure + "\nrepro: " +
            fault_repro_command(scenario, scheduler_name(kind), spec));
      ++outcome.checks;
    }
    return outcome;
  };
  const ScenarioSweep sweep = run_scenarios(scenarios, check, &sweep_pool());
  EXPECT_TRUE(sweep.ok()) << sweep.failure_digest();
  // The connectivity filter must not silently hollow out the sweep.
  EXPECT_GE(sweep.checks, 4 * kScenariosPerClass / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FaultSweep,
    ::testing::Values(SchedulerKind::kDistMisGbg,
                      SchedulerKind::kDistMisGeneral,
                      SchedulerKind::kRandomized, SchedulerKind::kDfs,
                      SchedulerKind::kDmgc),
    [](const auto& param_info) {
      std::string name = scheduler_name(param_info.param);
      for (char& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

// The correlated-loss sweep: every distributed scheduler × the burst /
// PRR / region / mixed classes, judged by the graceful-degradation pair —
// burst-quiescence (bounded correlated loss delays the schedule within the
// provisioned dilation, never livelocks it) and the detector oracle
// (suspicions stay accurate and consistent).
class CorrelatedSweep : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(CorrelatedSweep, AdaptiveTransportPassesDegradationOracles) {
  const SchedulerKind kind = GetParam();
  const bool needs_connected = kind == SchedulerKind::kDfs;
  const std::uint64_t base_seed =
      0xb1257ULL * (static_cast<std::uint64_t>(kind) + 1) + 9;
  const std::vector<Scenario> scenarios =
      sample_scenarios(12, base_seed, /*max_nodes=*/10);

  const ScenarioCheckFn check = [kind, needs_connected](
                                    const Scenario& scenario, std::size_t) {
    ScenarioOutcome outcome;
    const Graph graph = materialize(scenario);
    if (needs_connected && !is_connected(graph)) return outcome;
    for (const FaultSpec& spec : correlated_classes(scenario.seed + 3)) {
      for (const auto& oracle : {check_burst_quiescence, check_detector}) {
        const OracleVerdict verdict =
            oracle(kind, graph, scenario.seed, spec);
        if (!verdict.ok)
          outcome.failures.push_back(
              verdict.failure + "\nrepro: " +
              fault_repro_command(scenario, scheduler_name(kind), spec));
        ++outcome.checks;
      }
    }
    return outcome;
  };
  const ScenarioSweep sweep = run_scenarios(scenarios, check, &sweep_pool());
  EXPECT_TRUE(sweep.ok()) << sweep.failure_digest();
  EXPECT_GE(sweep.checks, 8 * 12 / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CorrelatedSweep,
    ::testing::Values(SchedulerKind::kDistMisGbg,
                      SchedulerKind::kDistMisGeneral,
                      SchedulerKind::kRandomized, SchedulerKind::kDfs,
                      SchedulerKind::kDmgc),
    [](const auto& param_info) {
      std::string name = scheduler_name(param_info.param);
      for (char& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

// DFS under a lossy plan across all three delay models: the timer-based
// retransmit path must be insensitive to how the adversary schedules
// deliveries.
TEST(FaultInjectionTest, DfsSurvivesLossAcrossDelayModels) {
  const std::vector<Scenario> scenarios = sample_scenarios(12, 0xde1a, 10);
  FaultSpec spec;
  spec.seed = 13;
  spec.drop_rate = 0.2;
  spec.duplicate_rate = 0.1;
  std::size_t checked = 0;
  for (const Scenario& scenario : scenarios) {
    const Graph graph = materialize(scenario);
    if (!is_connected(graph)) continue;
    for (const DelayModel model :
         {DelayModel::kUnit, DelayModel::kUniformRandom,
          DelayModel::kAdversarial}) {
      DfsOptions options;
      options.seed = scenario.seed;
      options.delay_model = model;
      options.faults = &spec;
      options.reliable = true;
      const ScheduleResult result = run_dfs_schedule(graph, options);
      const OracleVerdict verdict = check_fault_result(graph, result);
      EXPECT_TRUE(verdict.ok)
          << delay_model_name(model) << ": " << verdict.failure << "\nrepro: "
          << fault_repro_command(scenario, "DFS", spec);
      ++checked;
    }
  }
  EXPECT_GE(checked, 12u);
}

// Crash-recovery workflow: crash/churn plans orphan part of a clean
// schedule; dist_repair must restore feasibility while touching only the
// distance-2 neighborhood of the faulted region.
TEST(FaultInjectionTest, CrashRecoveryIsLocal) {
  const std::vector<Scenario> scenarios = sample_scenarios(18, 0xc4a5, 12);
  const ScenarioCheckFn check = [](const Scenario& scenario, std::size_t) {
    ScenarioOutcome outcome;
    const Graph graph = materialize(scenario);
    FaultSpec crash;
    crash.seed = scenario.seed + 7;
    crash.crash_fraction = 0.25;
    FaultSpec churn;
    churn.seed = scenario.seed + 7;
    churn.link_down_fraction = 0.3;
    for (const FaultSpec& spec : {crash, churn}) {
      const CrashRecoveryReport report = check_crash_recovery(
          SchedulerKind::kDistMisGbg, graph, scenario.seed, spec);
      ++outcome.checks;
      if (!report.ok)
        outcome.failures.push_back(
            report.failure + "\nrepro: " +
            fault_repro_command(scenario, "distMIS", spec));
      if (report.orphaned_arcs > 0 && report.changed_arcs == 0)
        outcome.failures.push_back(
            "orphaned arcs but repair changed nothing\nrepro: " +
            fault_repro_command(scenario, "distMIS", spec));
    }
    return outcome;
  };
  const ScenarioSweep sweep = run_scenarios(scenarios, check, &sweep_pool());
  EXPECT_EQ(sweep.checks, 2 * scenarios.size());
  EXPECT_TRUE(sweep.ok()) << sweep.failure_digest();
}

// dist_repair hardened with the wrapper also runs *under* faults.
TEST(FaultInjectionTest, HardenedRepairSurvivesLossyRun) {
  const std::vector<Scenario> scenarios = sample_scenarios(8, 0x4e9a, 10);
  FaultSpec spec;
  spec.seed = 17;
  spec.drop_rate = 0.2;
  for (const Scenario& scenario : scenarios) {
    const Graph graph = materialize(scenario);
    if (graph.num_edges() == 0) continue;
    const ScheduleResult clean =
        run_scheduler(SchedulerKind::kDistMisGbg, graph, scenario.seed);
    const ArcView view(graph);
    ArcColoring stale = clean.coloring;
    for (const NeighborEntry& entry : graph.neighbors(0))
      stale.clear(view.arc_from(entry.edge, 0));
    const DistRepairResult repaired = run_distributed_repair(
        graph, stale, scenario.seed, 1'000'000, nullptr, &spec,
        /*reliable=*/true);
    EXPECT_TRUE(repaired.completed);
    EXPECT_TRUE(is_feasible_schedule(view, repaired.coloring))
        << "repro: "
        << fault_repro_command(scenario, "dist_repair", spec);
  }
}

/// The canonical terminating-but-wrong fault case: unhardened dist_repair
/// under message loss finishes its fixed-length flood-and-compete schedule
/// with holes in its knowledge, producing an infeasible or incomplete
/// coloring.
bool lossy_repair_fails(const Graph& graph, const FaultSpec& spec) {
  if (graph.num_nodes() == 0 || graph.num_edges() == 0 || !spec.any())
    return false;
  const ScheduleResult clean =
      run_scheduler(SchedulerKind::kDistMisGbg, graph, 7);
  const ArcView view(graph);
  ArcColoring stale = clean.coloring;
  for (const NeighborEntry& entry : graph.neighbors(0))
    stale.clear(view.arc_from(entry.edge, 0));
  const DistRepairResult repaired = run_distributed_repair(
      graph, stale, 7, 1'000'000, nullptr, &spec, /*reliable=*/false);
  return !repaired.completed ||
         !is_feasible_schedule(view, repaired.coloring);
}

// The acceptance-criterion shrink: a seeded failing fault plan minimizes
// to a small (graph, spec) pair and renders as a one-line replay command.
TEST(FaultInjectionTest, FailingFaultPlanShrinksToReplayableRepro) {
  // Scan a few seeded instances for a failing one so the test is robust to
  // upstream generator tweaks; the shrinker contract is what is under test.
  Graph failing;
  FaultSpec failing_spec;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 6 && !found; ++seed) {
    const std::vector<Scenario> scenarios = sample_scenarios(12, seed, 14);
    for (const Scenario& scenario : scenarios) {
      FaultSpec spec;
      spec.seed = seed * 31 + 5;
      spec.drop_rate = 0.6;
      spec.corrupt_rate = 0.3;
      spec.max_losses_per_channel = 16;
      const Graph graph = materialize(scenario);
      if (lossy_repair_fails(graph, spec)) {
        failing = graph;
        failing_spec = spec;
        found = true;
        break;
      }
    }
  }
  ASSERT_TRUE(found) << "no seeded lossy repair failure found";

  ShrinkOptions options;
  options.max_checks = 400;
  const FaultShrinkOutcome shrunk =
      shrink_fault_case(failing, failing_spec, lossy_repair_fails, options);

  // The minimized case still fails, is no larger than the seed case, and
  // the spec only got simpler.
  EXPECT_TRUE(lossy_repair_fails(shrunk.graph, shrunk.spec));
  EXPECT_LE(shrunk.graph.num_nodes(), failing.num_nodes());
  EXPECT_LE(shrunk.graph.num_edges(), failing.num_edges());
  EXPECT_LE(shrunk.spec.drop_rate, failing_spec.drop_rate);
  EXPECT_LE(shrunk.spec.corrupt_rate, failing_spec.corrupt_rate);
  EXPECT_LE(shrunk.checks, options.max_checks + 1);

  const std::string repro = fault_repro_command(
      scenario_from_graph(shrunk.graph), "dist_repair", shrunk.spec);
  EXPECT_NE(repro.find("--faults="), std::string::npos) << repro;
  EXPECT_NE(repro.find("--scheduler=dist_repair"), std::string::npos)
      << repro;
}

// Shrinking disarms the correlated classes wholesale: when a failure only
// needs i.i.d. loss, the minimized spec must have shed its bursts, PRR
// matrix, region outages, and their tuning knobs, so the replay line stays
// one short --faults= string.
TEST(FaultInjectionTest, CorrelatedSpecFieldsShrinkAway) {
  const Graph graph = generate_cycle(8);
  FaultSpec spec;
  spec.seed = 77;
  spec.drop_rate = 0.6;
  spec.burst_rate = 0.3;
  spec.burst_max_run = 16;
  spec.burst_cap = 32;
  spec.prr_levels = {0.5, 0.8};
  spec.region_count = 2;
  spec.region_duration = 6.0;
  // The failure only depends on the i.i.d. drop rate: everything else is
  // shrinkable noise.
  const FaultFailingPredicate still_fails =
      [](const Graph& candidate, const FaultSpec& candidate_spec) {
        return candidate.num_edges() > 0 && candidate_spec.drop_rate >= 0.3;
      };
  const FaultShrinkOutcome shrunk =
      shrink_fault_case(graph, spec, still_fails);
  EXPECT_TRUE(still_fails(shrunk.graph, shrunk.spec));
  EXPECT_EQ(shrunk.spec.burst_rate, 0.0);
  EXPECT_TRUE(shrunk.spec.prr_levels.empty());
  EXPECT_EQ(shrunk.spec.region_count, 0u);
  const FaultSpec defaults;
  EXPECT_EQ(shrunk.spec.burst_max_run, defaults.burst_max_run);
  EXPECT_EQ(shrunk.spec.burst_cap, defaults.burst_cap);
  EXPECT_EQ(shrunk.spec.region_duration, defaults.region_duration);
  EXPECT_LE(shrunk.spec.drop_rate, spec.drop_rate);
  const std::string repro = fault_repro_command(
      scenario_from_graph(shrunk.graph), "distMIS", shrunk.spec);
  EXPECT_NE(repro.find("--faults="), std::string::npos) << repro;
  EXPECT_EQ(repro.find("bp="), std::string::npos) << repro;
  EXPECT_EQ(repro.find("regions="), std::string::npos) << repro;
}

}  // namespace
}  // namespace fdlsp
