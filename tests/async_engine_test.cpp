// Tests for the asynchronous event-driven engine.
#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.h"
#include "sim/async_engine.h"
#include "support/check.h"

namespace fdlsp {
namespace {

/// Relays a counter along a path: node 0 starts, each node forwards right.
class RelayProgram final : public AsyncProgram {
 public:
  RelayProgram(NodeId self, std::size_t n) : self_(self), n_(n) {}

  void on_start(AsyncContext& ctx) override {
    if (self_ == 0) {
      Message message;
      message.tag = 1;
      message.data = {1};
      ctx.send(1, std::move(message));
    }
  }

  void on_message(AsyncContext& ctx, Message& message) override {
    received_ = true;
    hops_ = message.data[0];
    if (self_ + 1 < n_) {
      Message next;
      next.tag = 1;
      next.data = {message.data[0] + 1};
      ctx.send(self_ + 1, std::move(next));
    }
  }

  bool finished() const override { return self_ == 0 || received_; }
  std::int64_t hops() const { return hops_; }

 private:
  NodeId self_;
  std::size_t n_;
  bool received_ = false;
  std::int64_t hops_ = 0;
};

TEST(AsyncEngine, UnitDelayRelayTiming) {
  constexpr std::size_t kNodes = 6;
  const Graph path = generate_path(kNodes);
  std::vector<std::unique_ptr<AsyncProgram>> programs;
  for (NodeId v = 0; v < kNodes; ++v)
    programs.push_back(std::make_unique<RelayProgram>(v, kNodes));
  AsyncEngine engine(path, std::move(programs), DelayModel::kUnit);
  const AsyncMetrics metrics = engine.run();
  EXPECT_TRUE(metrics.completed);
  EXPECT_EQ(metrics.messages, kNodes - 1);
  EXPECT_DOUBLE_EQ(metrics.completion_time, static_cast<double>(kNodes - 1));
  EXPECT_EQ(static_cast<RelayProgram&>(engine.program(kNodes - 1)).hops(),
            static_cast<std::int64_t>(kNodes - 1));
}

TEST(AsyncEngine, RandomDelayStillCompletes) {
  constexpr std::size_t kNodes = 6;
  const Graph path = generate_path(kNodes);
  std::vector<std::unique_ptr<AsyncProgram>> programs;
  for (NodeId v = 0; v < kNodes; ++v)
    programs.push_back(std::make_unique<RelayProgram>(v, kNodes));
  AsyncEngine engine(path, std::move(programs), DelayModel::kUniformRandom, 7);
  const AsyncMetrics metrics = engine.run();
  EXPECT_TRUE(metrics.completed);
  EXPECT_GT(metrics.completion_time, 0.0);
  EXPECT_LE(metrics.completion_time, static_cast<double>(kNodes - 1) + 1e-6);
}

/// Sends a burst of sequence-numbered messages to one neighbor.
class BurstSender final : public AsyncProgram {
 public:
  void on_start(AsyncContext& ctx) override {
    for (std::int64_t i = 0; i < 50; ++i) {
      Message message;
      message.tag = 1;
      message.data = {i};
      ctx.send(1, std::move(message));
    }
  }
  void on_message(AsyncContext&, Message&) override {}
  bool finished() const override { return true; }
};

class OrderChecker final : public AsyncProgram {
 public:
  void on_start(AsyncContext&) override {}
  void on_message(AsyncContext&, Message& message) override {
    in_order_ &= (message.data[0] == expected_);
    ++expected_;
  }
  bool finished() const override { return expected_ == 50; }
  bool in_order() const { return in_order_; }

 private:
  std::int64_t expected_ = 0;
  bool in_order_ = true;
};

TEST(AsyncEngine, ChannelsAreFifoUnderRandomDelays) {
  const Graph path = generate_path(2);
  std::vector<std::unique_ptr<AsyncProgram>> programs;
  programs.push_back(std::make_unique<BurstSender>());
  programs.push_back(std::make_unique<OrderChecker>());
  AsyncEngine engine(path, std::move(programs), DelayModel::kUniformRandom,
                     1234);
  const AsyncMetrics metrics = engine.run();
  EXPECT_TRUE(metrics.completed);
  EXPECT_TRUE(static_cast<OrderChecker&>(engine.program(1)).in_order());
}

class IllegalAsyncSender final : public AsyncProgram {
 public:
  void on_start(AsyncContext& ctx) override {
    Message message;
    message.tag = 1;
    ctx.send(2, std::move(message));  // not a neighbor on a path
  }
  void on_message(AsyncContext&, Message&) override {}
  bool finished() const override { return true; }
};

class SilentProgram final : public AsyncProgram {
 public:
  void on_start(AsyncContext&) override {}
  void on_message(AsyncContext&, Message&) override {}
  bool finished() const override { return true; }
};

TEST(AsyncEngine, RejectsNonNeighborSend) {
  const Graph path = generate_path(3);
  std::vector<std::unique_ptr<AsyncProgram>> programs;
  programs.push_back(std::make_unique<IllegalAsyncSender>());
  programs.push_back(std::make_unique<SilentProgram>());
  programs.push_back(std::make_unique<SilentProgram>());
  AsyncEngine engine(path, std::move(programs));
  EXPECT_THROW(engine.run(), contract_error);
}

TEST(AsyncEngine, DeterministicUnderSeed) {
  auto run_once = [](std::uint64_t seed) {
    const Graph path = generate_path(6);
    std::vector<std::unique_ptr<AsyncProgram>> programs;
    for (NodeId v = 0; v < 6; ++v)
      programs.push_back(std::make_unique<RelayProgram>(v, 6));
    AsyncEngine engine(path, std::move(programs), DelayModel::kUniformRandom,
                       seed);
    return engine.run().completion_time;
  };
  EXPECT_DOUBLE_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

}  // namespace
}  // namespace fdlsp
