// Tests for graph/schedule serialization and dot export.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "coloring/greedy.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "io/io.h"
#include "support/rng.h"

namespace fdlsp {
namespace {

TEST(GraphIo, RoundTripPlainGraph) {
  Rng rng(21);
  const Graph original = generate_gnm(25, 60, rng);
  std::stringstream buffer;
  write_graph(buffer, original);
  const GeometricGraph loaded = read_graph(buffer);
  ASSERT_EQ(loaded.graph.num_nodes(), original.num_nodes());
  ASSERT_EQ(loaded.graph.num_edges(), original.num_edges());
  for (EdgeId e = 0; e < original.num_edges(); ++e)
    EXPECT_EQ(loaded.graph.edge(e), original.edge(e));
  EXPECT_TRUE(loaded.positions.empty());
}

TEST(GraphIo, RoundTripGeometricGraph) {
  Rng rng(23);
  const GeometricGraph original = generate_udg(30, 5.0, 0.7, rng);
  std::stringstream buffer;
  write_graph(buffer, original.graph, &original.positions);
  const GeometricGraph loaded = read_graph(buffer);
  ASSERT_EQ(loaded.positions.size(), original.positions.size());
  for (std::size_t i = 0; i < loaded.positions.size(); ++i) {
    EXPECT_NEAR(loaded.positions[i].x, original.positions[i].x, 1e-9);
    EXPECT_NEAR(loaded.positions[i].y, original.positions[i].y, 1e-9);
  }
}

TEST(GraphIo, SkipsCommentsAndBlankLines) {
  std::stringstream buffer(
      "# a comment\n\ngraph 3 2\n# edges below\ne 0 1\n\ne 1 2\n");
  const GeometricGraph loaded = read_graph(buffer);
  EXPECT_EQ(loaded.graph.num_nodes(), 3u);
  EXPECT_EQ(loaded.graph.num_edges(), 2u);
}

TEST(GraphIo, RejectsMalformedInput) {
  {
    std::stringstream buffer("nonsense 3 2\n");
    EXPECT_THROW(read_graph(buffer), contract_error);
  }
  {
    std::stringstream buffer("graph 3 2\ne 0 1\n");  // missing edge
    EXPECT_THROW(read_graph(buffer), contract_error);
  }
  {
    std::stringstream buffer("graph 2 1\ne 0 5\n");  // endpoint range
    EXPECT_THROW(read_graph(buffer), contract_error);
  }
}

TEST(ScheduleIo, RoundTrip) {
  Rng rng(29);
  const Graph graph = generate_gnm(15, 35, rng);
  const ArcView view(graph);
  const ArcColoring original = greedy_coloring(view);
  std::stringstream buffer;
  write_schedule(buffer, original);
  const ArcColoring loaded = read_schedule(buffer);
  EXPECT_EQ(loaded.raw(), original.raw());
}

TEST(ScheduleIo, PartialColoringRoundTrip) {
  ArcColoring partial(4);
  partial.set(1, 7);
  std::stringstream buffer;
  write_schedule(buffer, partial);
  const ArcColoring loaded = read_schedule(buffer);
  EXPECT_EQ(loaded.raw(), partial.raw());
  EXPECT_EQ(loaded.num_colored(), 1u);
}

TEST(DotExport, UndirectedAndColored) {
  const Graph path = generate_path(3);
  {
    std::stringstream buffer;
    write_dot(buffer, path);
    EXPECT_NE(buffer.str().find("graph fdlsp"), std::string::npos);
    EXPECT_NE(buffer.str().find("0 -- 1"), std::string::npos);
  }
  {
    const ArcView view(path);
    const ArcColoring coloring = greedy_coloring(view);
    std::stringstream buffer;
    write_dot(buffer, path, &coloring);
    EXPECT_NE(buffer.str().find("digraph fdlsp"), std::string::npos);
    EXPECT_NE(buffer.str().find("label="), std::string::npos);
  }
}

TEST(FileIo, SaveAndLoad) {
  Rng rng(31);
  const GeometricGraph original = generate_udg(12, 3.0, 0.8, rng);
  const std::string graph_path = "/tmp/fdlsp_io_test_graph.txt";
  const std::string schedule_path = "/tmp/fdlsp_io_test_schedule.txt";
  save_graph_file(graph_path, original.graph, &original.positions);
  const GeometricGraph loaded = load_graph_file(graph_path);
  EXPECT_EQ(loaded.graph.num_edges(), original.graph.num_edges());

  const ArcColoring coloring = greedy_coloring(ArcView(original.graph));
  save_schedule_file(schedule_path, coloring);
  EXPECT_EQ(load_schedule_file(schedule_path).raw(), coloring.raw());
  std::remove(graph_path.c_str());
  std::remove(schedule_path.c_str());
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW(load_graph_file("/nonexistent/path/graph.txt"),
               contract_error);
}

}  // namespace
}  // namespace fdlsp
