// Steady-state determinism of the soak harness: one SoakSpec names one run.
//
// The properties the `--soak=` repro grammar depends on:
//   * two identical centralized runs produce byte-identical event logs and
//     final schedules;
//   * the distributed engine produces the same bytes at 1, 2, and 8 engine
//     threads (the sharded rounds of the performance layer must not leak
//     scheduling order into the soak log) — this is the test the TSan
//     preset runs to also certify the sharing is race-free;
//   * the event *stream* (kinds, picks, topology deltas) is identical
//     between a centralized and a distributed run of the same spec, because
//     topology draws never consult the scheduling engine.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "soak/driver.h"
#include "support/thread_pool.h"
#include "verify/soak_oracles.h"

namespace fdlsp {
namespace {

std::uint64_t soak_events_cap(std::uint64_t fallback) {
  if (const char* env = std::getenv("FDLSP_SOAK_EVENTS"))
    return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
  return fallback;
}

SoakSpec small_spec(std::uint64_t seed) {
  SoakSpec spec;
  spec.seed = seed;
  spec.n = 32;
  spec.events = soak_events_cap(300);
  return spec;
}

TEST(SoakDeterminism, CentralizedRunsAreByteIdentical) {
  const SoakSpec spec = small_spec(5);
  const OracleVerdict verdict = check_soak_determinism(spec);
  EXPECT_TRUE(verdict.ok) << verdict.failure;
}

TEST(SoakDeterminism, DistributedSerialMatchesTwoThreads) {
  const SoakSpec spec = small_spec(6);
  ThreadPool pool(2);
  SoakOptions serial;
  serial.distributed = true;
  SoakOptions threaded;
  threaded.distributed = true;
  threaded.pool = &pool;
  const OracleVerdict verdict = check_soak_determinism(spec, serial, threaded);
  EXPECT_TRUE(verdict.ok) << verdict.failure;
}

TEST(SoakDeterminism, DistributedTwoThreadsMatchEight) {
  const SoakSpec spec = small_spec(7);
  ThreadPool two(2);
  ThreadPool eight(8);
  SoakOptions a;
  a.distributed = true;
  a.pool = &two;
  SoakOptions b;
  b.distributed = true;
  b.pool = &eight;
  const OracleVerdict verdict = check_soak_determinism(spec, a, b);
  EXPECT_TRUE(verdict.ok) << verdict.failure;
}

TEST(SoakDeterminism, EventStreamIgnoresSchedulingEngine) {
  const SoakSpec spec = small_spec(8);
  SoakDriver centralized(spec);
  SoakOptions options;
  options.distributed = true;
  SoakDriver distributed(spec, options);
  centralized.run();
  distributed.run();
  ASSERT_EQ(centralized.log().size(), distributed.log().size());
  for (std::size_t i = 0; i < centralized.log().size(); ++i) {
    const SoakEventRecord& a = centralized.log()[i];
    const SoakEventRecord& b = distributed.log()[i];
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.primary, b.primary);
    EXPECT_EQ(a.secondary, b.secondary);
    EXPECT_EQ(a.changed_edges, b.changed_edges);
    EXPECT_EQ(a.touched, b.touched);
  }
}

}  // namespace
}  // namespace fdlsp
