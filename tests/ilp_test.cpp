// Tests for branch-and-bound ILP and the Section 4 FDLSP formulation.
#include <gtest/gtest.h>

#include "coloring/checker.h"
#include "coloring/exact.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "ilp/branch_bound.h"
#include "ilp/fdlsp_ilp.h"
#include "support/rng.h"

namespace fdlsp {
namespace {

TEST(BranchBound, SmallKnapsack) {
  // max 10a + 6b + 4c s.t. a+b+c <= 2 (binary) -> 16.
  IlpModel model;
  const auto a = model.add_binary();
  const auto b = model.add_binary();
  const auto c = model.add_binary();
  model.add_constraint({{{a, 1.0}, {b, 1.0}, {c, 1.0}}, Sense::kLessEqual, 2.0});
  model.set_objective(Objective::kMaximize, {{a, 10.0}, {b, 6.0}, {c, 4.0}});
  const IlpResult result = solve_ilp(model);
  ASSERT_EQ(result.status, IlpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 16.0, 1e-6);
  EXPECT_NEAR(result.x[a], 1.0, 1e-6);
  EXPECT_NEAR(result.x[b], 1.0, 1e-6);
  EXPECT_NEAR(result.x[c], 0.0, 1e-6);
}

TEST(BranchBound, IntegralityMatters) {
  // max x + y, x + y <= 1.5 binary -> ILP gives 1, LP would give 1.5.
  IlpModel model;
  const auto x = model.add_binary();
  const auto y = model.add_binary();
  model.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kLessEqual, 1.5});
  model.set_objective(Objective::kMaximize, {{x, 1.0}, {y, 1.0}});
  const IlpResult result = solve_ilp(model);
  ASSERT_EQ(result.status, IlpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 1.0, 1e-6);
}

TEST(BranchBound, InfeasibleBinarySystem) {
  IlpModel model;
  const auto x = model.add_binary();
  model.add_constraint({{{x, 2.0}}, Sense::kEqual, 1.0});  // x = 0.5 impossible
  model.set_objective(Objective::kMinimize, {{x, 1.0}});
  EXPECT_EQ(solve_ilp(model).status, IlpStatus::kInfeasible);
}

TEST(BranchBound, VertexCoverOnPath) {
  // Min vertex cover of path 0-1-2-3: optimum 2.
  const Graph path = generate_path(4);
  IlpModel model;
  std::vector<std::size_t> vars;
  for (NodeId v = 0; v < 4; ++v) vars.push_back(model.add_binary());
  for (const Edge& e : path.edges())
    model.add_constraint(
        {{{vars[e.u], 1.0}, {vars[e.v], 1.0}}, Sense::kGreaterEqual, 1.0});
  std::vector<LinearTerm> objective;
  for (auto var : vars) objective.push_back({var, 1.0});
  model.set_objective(Objective::kMinimize, std::move(objective));
  const IlpResult result = solve_ilp(model);
  ASSERT_EQ(result.status, IlpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 2.0, 1e-6);
  EXPECT_TRUE(model.is_feasible_point(result.x));
}

TEST(BranchBound, MixedIntegerContinuous) {
  // max 2b + y s.t. b binary, y in [0, 2.5], b + y <= 3 -> b=1, y=2 -> 4.
  IlpModel model;
  const auto b = model.add_binary();
  const auto y = model.add_variable(0.0, 2.5);
  model.add_constraint({{{b, 1.0}, {y, 1.0}}, Sense::kLessEqual, 3.0});
  model.set_objective(Objective::kMaximize, {{b, 2.0}, {y, 1.0}});
  const IlpResult result = solve_ilp(model);
  ASSERT_EQ(result.status, IlpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 4.0, 1e-6);
}

// --- Section 4 FDLSP formulation ---

TEST(FdlspIlp, ModelShape) {
  const Graph path = generate_path(3);
  const ArcView view(path);
  const FdlspIlp ilp(view, 4);
  EXPECT_EQ(ilp.palette(), 4u);
  // 4 C_j + 4 arcs * 4 slots.
  EXPECT_EQ(ilp.model().num_variables(), 4u + 16u);
  EXPECT_NE(ilp.model().num_constraints(), 0u);
}

TEST(FdlspIlp, SingleEdgeNeedsTwoSlots) {
  const Graph edge = generate_path(2);
  const auto result = solve_fdlsp_ilp(ArcView(edge));
  EXPECT_TRUE(result.optimal);
  EXPECT_EQ(result.num_colors, 2u);
  EXPECT_TRUE(is_feasible_schedule(ArcView(edge), result.coloring));
}

TEST(FdlspIlp, PathOfThreeNeedsFourSlots) {
  const Graph path = generate_path(3);
  const auto result = solve_fdlsp_ilp(ArcView(path));
  EXPECT_TRUE(result.optimal);
  EXPECT_EQ(result.num_colors, 4u);  // 2Δ with Δ = 2
}

TEST(FdlspIlp, MatchesExactSolverOnTinyGraphs) {
  // The ILP and the conflict-graph DSATUR solver optimize the same set.
  // (4-node instances: the dense-simplex B&B is a correctness reference,
  // not a production solver — DSATUR on the conflict graph is.)
  Rng rng(501);
  IlpOptions options;
  options.max_nodes = 20'000;  // proving optimality can blow up; cap it
  int proven = 0;
  for (int trial = 0; trial < 4; ++trial) {
    const Graph graph = generate_gnm(4, 3, rng);
    const ArcView view(graph);
    const auto via_ilp = solve_fdlsp_ilp(view, options);
    const auto via_exact = optimal_fdlsp(view);
    ASSERT_TRUE(via_exact.optimal);
    EXPECT_TRUE(is_feasible_schedule(view, via_ilp.coloring));
    // Never better than the optimum; equal whenever the proof finished.
    EXPECT_GE(via_ilp.num_colors, via_exact.num_colors);
    if (via_ilp.optimal) {
      EXPECT_EQ(via_ilp.num_colors, via_exact.num_colors) << "trial " << trial;
      ++proven;
    }
  }
  EXPECT_GT(proven, 0);  // at least one instance must finish its proof
}

TEST(FdlspIlp, Table1K22) {
  // Table 1: ILP(K_{2,2}) = 4 — solved by the actual ILP machinery here.
  const Graph graph = generate_complete_bipartite(2, 2);
  const auto result = solve_fdlsp_ilp(ArcView(graph));
  EXPECT_TRUE(is_feasible_schedule(ArcView(graph), result.coloring));
  EXPECT_TRUE(result.optimal);
  EXPECT_EQ(result.num_colors, 4u);
}

TEST(FdlspIlp, TriangleNeedsSixSlots) {
  const Graph triangle = generate_complete(3);
  const auto result = solve_fdlsp_ilp(ArcView(triangle));
  EXPECT_TRUE(result.optimal);
  EXPECT_EQ(result.num_colors, 6u);
}

TEST(FdlspIlp, EmptyGraph) {
  const Graph graph(3);
  const auto result = solve_fdlsp_ilp(ArcView(graph));
  EXPECT_TRUE(result.optimal);
  EXPECT_EQ(result.num_colors, 0u);
}

}  // namespace
}  // namespace fdlsp
