// FaultPlan unit tests: decision determinism, bounded loss, crash/churn
// schedules, payload-size-preserving corruption, spec round-tripping, and
// the zero-fault byte-identity guarantee of the injection seam.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "algos/scheduler.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "sim/fault.h"
#include "support/check.h"
#include "support/rng.h"

namespace fdlsp {
namespace {

Graph test_graph() {
  Rng rng(5);
  return generate_gnm(12, 20, rng);
}

TEST(FaultPlanTest, DecisionsAreDeterministic) {
  const Graph graph = test_graph();
  FaultSpec spec;
  spec.seed = 42;
  spec.drop_rate = 0.2;
  spec.duplicate_rate = 0.1;
  spec.corrupt_rate = 0.1;
  spec.crash_fraction = 0.25;
  spec.link_down_fraction = 0.25;

  FaultPlan a(spec, graph);
  FaultPlan b(spec, graph);
  for (ArcId channel = 0; channel < 2 * graph.num_edges(); ++channel)
    for (std::uint64_t index = 0; index < 50; ++index)
      ASSERT_EQ(a.channel_action(channel, index),
                b.channel_action(channel, index))
          << "channel " << channel << " index " << index;
  EXPECT_EQ(a.crashed_nodes(), b.crashed_nodes());
  EXPECT_EQ(a.churned_edges(), b.churned_edges());
}

TEST(FaultPlanTest, SeedChangesDecisions) {
  const Graph graph = test_graph();
  FaultSpec spec;
  spec.drop_rate = 0.5;
  spec.seed = 1;
  FaultPlan a(spec, graph);
  spec.seed = 2;
  FaultPlan b(spec, graph);
  bool differs = false;
  for (ArcId channel = 0; channel < 2 * graph.num_edges() && !differs;
       ++channel)
    for (std::uint64_t index = 0; index < 20 && !differs; ++index)
      differs = a.channel_action(channel, index) !=
                b.channel_action(channel, index);
  EXPECT_TRUE(differs);
}

TEST(FaultPlanTest, LossIsBoundedPerChannel) {
  const Graph graph = test_graph();
  FaultSpec spec;
  spec.drop_rate = 1.0;  // every message would drop, absent the cap
  spec.max_losses_per_channel = 3;
  FaultPlan plan(spec, graph);
  std::uint64_t drops = 0;
  for (std::uint64_t index = 0; index < 100; ++index)
    if (plan.channel_action(/*channel=*/0, index) == FaultAction::kDrop)
      ++drops;
  EXPECT_EQ(drops, 3u);
  // Once the cap is hit the channel is lossless forever.
  EXPECT_EQ(plan.channel_action(0, 100), FaultAction::kDeliver);
  // Other channels have their own budget.
  EXPECT_EQ(plan.channel_action(1, 0), FaultAction::kDrop);
}

TEST(FaultPlanTest, CorruptionPreservesPayloadSize) {
  const Graph graph = test_graph();
  FaultSpec spec;
  spec.corrupt_rate = 1.0;
  FaultPlan plan(spec, graph);

  Message message;
  message.tag = 7;
  message.data = {1, 2, 3};
  Message corrupted = message;
  plan.corrupt_payload(/*channel=*/0, /*message_index=*/0, corrupted);
  EXPECT_EQ(corrupted.data.size(), message.data.size());
  EXPECT_TRUE(corrupted.tag != message.tag || corrupted.data != message.data);

  Message empty;
  empty.tag = 7;
  Message empty_corrupted = empty;
  plan.corrupt_payload(0, 0, empty_corrupted);
  EXPECT_TRUE(empty_corrupted.data.empty());
  EXPECT_NE(empty_corrupted.tag, empty.tag);  // the tag takes the flip
}

TEST(FaultPlanTest, CrashScheduleMatchesFraction) {
  Rng rng(9);
  const Graph graph = generate_gnm(40, 60, rng);
  FaultSpec all;
  all.crash_fraction = 1.0;
  const FaultPlan everyone(all, graph);
  EXPECT_EQ(everyone.crashed_nodes().size(), graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    EXPECT_TRUE(everyone.node_crashes(v));
    EXPECT_GE(everyone.crash_time(v), 0.0);
    EXPECT_LT(everyone.crash_time(v), all.crash_horizon);
    EXPECT_FALSE(everyone.node_down(v, -1.0));
    EXPECT_TRUE(everyone.node_down(v, all.crash_horizon + 1.0));
  }

  FaultSpec none;
  const FaultPlan nobody(none, graph);
  EXPECT_TRUE(nobody.crashed_nodes().empty());
  EXPECT_TRUE(nobody.churned_edges().empty());
}

TEST(FaultPlanTest, LinkDownWindowsAreFinite) {
  const Graph graph = test_graph();
  FaultSpec spec;
  spec.link_down_fraction = 1.0;
  spec.link_down_duration = 3.0;
  const FaultPlan plan(spec, graph);
  ASSERT_EQ(plan.churned_edges().size(), graph.num_edges());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const ArcId forward = static_cast<ArcId>(e << 1);
    const ArcId backward = static_cast<ArcId>((e << 1) | 1u);
    bool ever_down = false;
    for (double t = 0.0; t < spec.link_down_horizon + spec.link_down_duration;
         t += 0.5) {
      // Both directions of an edge share the window.
      ASSERT_EQ(plan.link_down(forward, t), plan.link_down(backward, t));
      ever_down = ever_down || plan.link_down(forward, t);
    }
    EXPECT_TRUE(ever_down);
    EXPECT_FALSE(plan.link_down(
        forward, spec.link_down_horizon + spec.link_down_duration + 1.0));
  }
}

TEST(FaultPlanTest, BurstChainIsDeterministicAndBounded) {
  const Graph graph = test_graph();
  FaultSpec spec;
  spec.seed = 13;
  spec.burst_rate = 0.9;      // chains go bad quickly...
  spec.burst_recover = 0.1;   // ...and stay bad a while
  spec.burst_loss = 1.0;
  spec.burst_cap = 4;
  FaultPlan a(spec, graph);
  FaultPlan b(spec, graph);
  std::uint64_t drops = 0;
  std::uint64_t index = 0;
  for (std::uint64_t step = 0; step < 200; ++step) {
    const FaultAction action =
        a.channel_action(/*channel=*/0, index, static_cast<double>(step));
    ASSERT_EQ(action,
              b.channel_action(0, index, static_cast<double>(step)))
        << "step " << step;
    ++index;
    if (action == FaultAction::kDrop) ++drops;
  }
  // Bursts happen, but never beyond the per-edge budget.
  EXPECT_GT(drops, 0u);
  EXPECT_LE(drops, spec.burst_cap);
  EXPECT_EQ(a.stats().burst_dropped, drops);
  // Budget exhausted: the edge's chain is pinned good forever after.
  for (std::uint64_t step = 200; step < 260; ++step)
    EXPECT_EQ(a.channel_action(0, index++, static_cast<double>(step)),
              FaultAction::kDeliver);
}

TEST(FaultPlanTest, BurstStateIsSharedAcrossEdgeDirections) {
  const Graph graph = test_graph();
  FaultSpec spec;
  spec.seed = 21;
  spec.burst_rate = 1.0;  // bad from step 1 onward
  spec.burst_recover = 0.0;
  spec.burst_loss = 1.0;
  spec.burst_max_run = 64;
  spec.burst_cap = 2;
  FaultPlan plan(spec, graph);
  // Both directions of edge 0 draw from the same chain and the same
  // budget: two drops total, wherever they land.
  EXPECT_EQ(plan.channel_action(0, 0, 1.0), FaultAction::kDrop);
  EXPECT_EQ(plan.channel_action(1, 0, 1.0), FaultAction::kDrop);
  EXPECT_EQ(plan.channel_action(0, 1, 2.0), FaultAction::kDeliver);
  EXPECT_EQ(plan.channel_action(1, 1, 2.0), FaultAction::kDeliver);
  EXPECT_EQ(plan.stats().burst_dropped, 2u);
}

TEST(FaultPlanTest, PrrDropsShareTheChannelLossCap) {
  const Graph graph = test_graph();
  FaultSpec spec;
  spec.seed = 17;
  spec.prr_levels = {0.25};  // every edge: 75% loss, absent the cap
  spec.max_losses_per_channel = 3;
  FaultPlan plan(spec, graph);
  EXPECT_EQ(plan.link_prr(/*channel=*/0), 0.25);
  std::uint64_t drops = 0;
  for (std::uint64_t index = 0; index < 100; ++index)
    if (plan.channel_action(0, index) == FaultAction::kDrop) ++drops;
  EXPECT_GT(drops, 0u);
  EXPECT_LE(drops, spec.max_losses_per_channel);
  EXPECT_EQ(plan.stats().prr_dropped, drops);
  // Cap consumed: lossless forever after.
  EXPECT_EQ(plan.channel_action(0, 100), FaultAction::kDeliver);
}

TEST(FaultPlanTest, PrrLevelAssignmentIsDeterministic) {
  const Graph graph = test_graph();
  FaultSpec spec;
  spec.seed = 23;
  spec.prr_levels = {0.9, 0.6, 0.3};
  const FaultPlan a(spec, graph);
  const FaultPlan b(spec, graph);
  for (ArcId channel = 0; channel < 2 * graph.num_edges(); ++channel) {
    ASSERT_EQ(a.link_prr(channel), b.link_prr(channel));
    // Both directions of an edge share the level.
    ASSERT_EQ(a.link_prr(channel), a.link_prr(channel ^ 1u));
  }
}

TEST(FaultPlanTest, RegionOutageWindowsAreFiniteAndShared) {
  const Graph graph = test_graph();
  FaultSpec spec;
  spec.seed = 29;
  spec.region_count = 2;
  spec.region_radius = 2.0;  // covers the whole virtual unit square
  spec.region_horizon = 8.0;
  spec.region_duration = 3.0;
  const FaultPlan plan(spec, graph);
  EXPECT_EQ(plan.region_edges().size(), graph.num_edges());
  bool ever_down = false;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const ArcId forward = static_cast<ArcId>(e << 1);
    const ArcId backward = static_cast<ArcId>((e << 1) | 1u);
    for (double t = 0.0; t < spec.region_horizon + spec.region_duration;
         t += 0.5) {
      ASSERT_EQ(plan.region_down(forward, t), plan.region_down(backward, t));
      ever_down = ever_down || plan.region_down(forward, t);
    }
    // Every window closes: outages are finite like churn windows.
    EXPECT_FALSE(plan.region_down(
        forward, spec.region_horizon + spec.region_duration + 1.0));
  }
  EXPECT_TRUE(ever_down);
}

TEST(FaultPlanTest, RegionDiscsUseProvidedPositions) {
  const Graph graph = test_graph();
  FaultSpec spec;
  spec.seed = 31;
  spec.region_count = 4;
  spec.region_radius = 0.25;
  // All nodes far outside the unit square the disc centers are hashed
  // into: no edge can be covered.
  const std::vector<Point> far(graph.num_nodes(), Point{100.0, 100.0});
  const FaultPlan missed(spec, graph, &far);
  EXPECT_TRUE(missed.region_edges().empty());
  // All nodes in the middle of the square with a radius covering it: every
  // edge is covered by every disc.
  spec.region_radius = 2.0;
  const std::vector<Point> centered(graph.num_nodes(), Point{0.5, 0.5});
  const FaultPlan covered(spec, graph, &centered);
  EXPECT_EQ(covered.region_edges().size(), graph.num_edges());
}

#ifndef NDEBUG
TEST(FaultPlanTest, ReuseAcrossRunsAsserts) {
  const Graph graph = test_graph();
  FaultSpec spec;
  spec.drop_rate = 0.1;
  FaultPlan plan(spec, graph);
  plan.on_run_start();  // first run claims the plan
  EXPECT_THROW(plan.on_run_start(), contract_error);
}
#endif

TEST(FaultPlanTest, LoadPrrLevelsParsesTraceFiles) {
  const std::string path = testing::TempDir() + "fdlsp_prr_trace.txt";
  {
    std::ofstream out(path);
    out << "0.9 0.75\n0.5\n";
  }
  const std::vector<double> levels = load_prr_levels(path);
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[0], 0.9);
  EXPECT_EQ(levels[1], 0.75);
  EXPECT_EQ(levels[2], 0.5);
  // A loaded trace plugs straight into the spec grammar.
  FaultSpec spec;
  spec.prr_levels = levels;
  EXPECT_EQ(parse_fault_spec(format_fault_spec(spec)), spec);

  {
    std::ofstream out(path);
    out << "0.9 banana\n";
  }
  EXPECT_THROW(load_prr_levels(path), contract_error);
  {
    std::ofstream out(path);
    out << "1.5\n";  // PRR above 1 is meaningless
  }
  EXPECT_THROW(load_prr_levels(path), contract_error);
  EXPECT_THROW(load_prr_levels("/nonexistent/prr.txt"), contract_error);
  std::remove(path.c_str());
}

TEST(FaultPlanTest, SpecFormatsAndParsesRoundTrip) {
  FaultSpec spec;
  spec.seed = 7;
  spec.drop_rate = 0.125;
  spec.duplicate_rate = 0.0625;
  spec.corrupt_rate = 0.25;
  spec.max_losses_per_channel = 5;
  spec.crash_fraction = 0.5;
  spec.crash_horizon = 12.0;
  spec.link_down_fraction = 0.25;
  spec.link_down_horizon = 10.0;
  spec.link_down_duration = 2.0;
  EXPECT_EQ(parse_fault_spec(format_fault_spec(spec)), spec);

  const FaultSpec defaults;
  EXPECT_EQ(format_fault_spec(defaults), "none");
  EXPECT_EQ(parse_fault_spec("none"), defaults);
  EXPECT_EQ(parse_fault_spec(format_fault_spec(defaults)), defaults);

  FaultSpec drop_only;
  drop_only.drop_rate = 0.1;
  EXPECT_EQ(parse_fault_spec(format_fault_spec(drop_only)), drop_only);

  EXPECT_THROW(parse_fault_spec("bogus=1"), contract_error);
  EXPECT_THROW(parse_fault_spec("drop"), contract_error);
}

// The seam contract: with no plan armed, the faulted entry point must
// reproduce the unfaulted run bit for bit — coloring, slots, rounds,
// messages — on both engine families.
TEST(FaultPlanTest, ZeroFaultPathIsByteIdentical) {
  const Graph sync_graph = test_graph();
  const Graph async_graph = generate_cycle(10);
  const FaultSpec none;
  ASSERT_FALSE(none.any());

  for (const SchedulerKind kind :
       {SchedulerKind::kDistMisGbg, SchedulerKind::kDistMisGeneral,
        SchedulerKind::kRandomized}) {
    const ScheduleResult plain = run_scheduler(kind, sync_graph, 3);
    const ScheduleResult faulted = run_scheduler_faulted(
        kind, sync_graph, 3, none, /*reliable=*/false);
    ASSERT_EQ(plain.coloring.num_arcs(), faulted.coloring.num_arcs());
    for (ArcId a = 0; a < plain.coloring.num_arcs(); ++a)
      ASSERT_EQ(plain.coloring.color(a), faulted.coloring.color(a));
    EXPECT_EQ(plain.num_slots, faulted.num_slots);
    EXPECT_EQ(plain.rounds, faulted.rounds);
    EXPECT_EQ(plain.messages, faulted.messages);
  }

  const ScheduleResult plain =
      run_scheduler(SchedulerKind::kDfs, async_graph, 3);
  const ScheduleResult faulted = run_scheduler_faulted(
      SchedulerKind::kDfs, async_graph, 3, none, /*reliable=*/false);
  for (ArcId a = 0; a < plain.coloring.num_arcs(); ++a)
    ASSERT_EQ(plain.coloring.color(a), faulted.coloring.color(a));
  EXPECT_EQ(plain.messages, faulted.messages);
}

}  // namespace
}  // namespace fdlsp
