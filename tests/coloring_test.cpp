// Tests for ArcColoring, the feasibility checker, and greedy coloring.
#include <gtest/gtest.h>

#include "coloring/checker.h"
#include "coloring/conflict.h"
#include "coloring/bounds.h"
#include "coloring/greedy.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "support/rng.h"

namespace fdlsp {
namespace {

TEST(ArcColoring, TracksAssignments) {
  ArcColoring coloring(4);
  EXPECT_EQ(coloring.num_arcs(), 4u);
  EXPECT_FALSE(coloring.is_colored(0));
  EXPECT_EQ(coloring.num_colored(), 0u);
  coloring.set(0, 2);
  coloring.set(1, 0);
  EXPECT_TRUE(coloring.is_colored(0));
  EXPECT_EQ(coloring.color(0), 2);
  EXPECT_EQ(coloring.num_colored(), 2u);
  EXPECT_FALSE(coloring.complete());
  coloring.set(2, 2);
  coloring.set(3, 1);
  EXPECT_TRUE(coloring.complete());
  EXPECT_EQ(coloring.num_colors_used(), 3u);
  EXPECT_EQ(coloring.color_span(), 3u);
}

TEST(ArcColoring, ClearAndRecolor) {
  ArcColoring coloring(2);
  coloring.set(0, 5);
  coloring.clear(0);
  EXPECT_FALSE(coloring.is_colored(0));
  EXPECT_EQ(coloring.num_colored(), 0u);
  coloring.set(0, 1);
  EXPECT_EQ(coloring.color(0), 1);
}

TEST(ArcColoring, CountsDistinctColorsWithGaps) {
  ArcColoring coloring(3);
  coloring.set(0, 0);
  coloring.set(1, 5);
  coloring.set(2, 5);
  EXPECT_EQ(coloring.num_colors_used(), 2u);
  EXPECT_EQ(coloring.color_span(), 6u);
}

TEST(Checker, DetectsHiddenTerminalViolation) {
  const Graph path = generate_path(4);
  const ArcView view(path);
  ArcColoring coloring(view.num_arcs());
  coloring.set(view.find_arc(0, 1), 0);
  coloring.set(view.find_arc(2, 3), 0);  // conflicts: 2 adjacent to head 1
  const auto witness = find_violation(view, coloring);
  ASSERT_TRUE(witness.has_value());
  EXPECT_FALSE(is_feasible_schedule(view, coloring));
}

TEST(Checker, AcceptsPartialNonConflicting) {
  const Graph path = generate_path(4);
  const ArcView view(path);
  ArcColoring coloring(view.num_arcs());
  coloring.set(view.find_arc(1, 0), 0);
  coloring.set(view.find_arc(2, 3), 0);  // compatible (tested in conflict_test)
  EXPECT_FALSE(find_violation(view, coloring).has_value());
  EXPECT_FALSE(is_feasible_schedule(view, coloring));  // incomplete
}

TEST(Greedy, SingleEdgeUsesTwoSlots) {
  const Graph graph = generate_path(2);
  const ArcView view(graph);
  const ArcColoring coloring = greedy_coloring(view);
  EXPECT_TRUE(is_feasible_schedule(view, coloring));
  EXPECT_EQ(coloring.num_colors_used(), 2u);
}

TEST(Greedy, TreeUsesExactly2Delta) {
  // Both the ILP and DFS assign 2Δ on trees (Section 8); greedy matches the
  // lower bound on stars.
  const Graph star = generate_star(6);
  const ArcView view(star);
  const ArcColoring coloring = greedy_coloring(view);
  EXPECT_TRUE(is_feasible_schedule(view, coloring));
  EXPECT_EQ(coloring.num_colors_used(), 2 * star.max_degree());
}

TEST(Greedy, FeasibleOnAllOrdersAndGraphs) {
  Rng rng(41);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph graph = generate_gnm(24, 50, rng);
    const ArcView view(graph);
    for (GreedyOrder order : {GreedyOrder::kArcId, GreedyOrder::kByDegreeDesc,
                              GreedyOrder::kRandom}) {
      Rng order_rng(7);
      const ArcColoring coloring = greedy_coloring(view, order, &order_rng);
      EXPECT_TRUE(is_feasible_schedule(view, coloring));
      EXPECT_LE(coloring.num_colors_used(), upper_bound_colors(graph));
      EXPECT_GE(coloring.num_colors_used(), lower_bound_trivial(graph));
    }
  }
}

TEST(Greedy, InOrderRejectsPartialOrders) {
  const Graph graph = generate_path(3);
  const ArcView view(graph);
  EXPECT_THROW(greedy_coloring_in_order(view, {0, 1}), contract_error);
  EXPECT_THROW(greedy_coloring_in_order(view, {0, 0, 1, 2}), contract_error);
}

TEST(Greedy, EvenCycleUsesFourColors) {
  // Section 3 note: even cycles need exactly 4 colors.
  const Graph cycle = generate_cycle(8);
  const ArcView view(cycle);
  const ArcColoring coloring = greedy_coloring(view);
  EXPECT_TRUE(is_feasible_schedule(view, coloring));
  EXPECT_GE(coloring.num_colors_used(), 4u);
  EXPECT_LE(coloring.num_colors_used(), upper_bound_colors(cycle));
}

TEST(Greedy, CompleteGraphNeedsAllSlots) {
  // Section 3 note: complete graphs need Δ² + Δ slots (one per arc).
  const Graph complete = generate_complete(4);
  const ArcView view(complete);
  const ArcColoring coloring = greedy_coloring(view);
  EXPECT_TRUE(is_feasible_schedule(view, coloring));
  const std::size_t delta = complete.max_degree();
  EXPECT_EQ(coloring.num_colors_used(), delta * delta + delta);
}

}  // namespace
}  // namespace fdlsp
