// Tests for the distributed repair protocol.
#include <gtest/gtest.h>

#include <cstdint>

#include "algos/dist_repair.h"
#include "algos/repair.h"
#include "coloring/checker.h"
#include "coloring/greedy.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "support/rng.h"

namespace fdlsp {
namespace {

TEST(DistRepair, ColorsFromScratch) {
  // Entirely uncolored input: repair degenerates to distributed coloring.
  const Graph graph = generate_cycle(8);
  const ArcView view(graph);
  const auto result =
      run_distributed_repair(graph, ArcColoring(view.num_arcs()), 3);
  EXPECT_TRUE(is_feasible_schedule(view, result.coloring));
  EXPECT_EQ(result.recolored_arcs, view.num_arcs());
  EXPECT_GT(result.rounds, 0u);
}

TEST(DistRepair, KeepsFeasibleScheduleUntouched) {
  Rng rng(1001);
  const Graph graph = generate_gnm(25, 55, rng);
  const ArcView view(graph);
  const ArcColoring good = greedy_coloring(view);
  const auto result = run_distributed_repair(graph, good, 5);
  EXPECT_TRUE(is_feasible_schedule(view, result.coloring));
  EXPECT_EQ(result.recolored_arcs, 0u);
  EXPECT_EQ(result.coloring.raw(), good.raw());
}

TEST(DistRepair, FixesInjectedConflict) {
  const Graph path = generate_path(4);
  const ArcView view(path);
  ArcColoring bad = greedy_coloring(view);
  bad.set(view.find_arc(2, 3), bad.color(view.find_arc(0, 1)));
  const auto result = run_distributed_repair(path, bad, 7);
  EXPECT_TRUE(is_feasible_schedule(view, result.coloring));
  EXPECT_GE(result.recolored_arcs, 1u);
  EXPECT_LT(result.recolored_arcs, view.num_arcs());
}

TEST(DistRepair, NodeJoinIsLocal) {
  Rng rng(1003);
  auto positions = generate_udg(40, 5.0, 0.8, rng).positions;
  const Graph old_graph = udg_from_positions(positions, 0.8);
  const ArcView old_view(old_graph);
  const ArcColoring old_coloring = greedy_coloring(old_view);

  positions.push_back(Point{2.5, 2.5});
  const Graph new_graph = udg_from_positions(positions, 0.8);
  const ArcView new_view(new_graph);
  const ArcColoring transferred =
      transfer_coloring(old_view, old_coloring, new_view);

  const auto result = run_distributed_repair(new_graph, transferred, 9);
  EXPECT_TRUE(is_feasible_schedule(new_view, result.coloring));
  EXPECT_LT(result.recolored_arcs, new_view.num_arcs() / 2);
}

TEST(DistRepair, ChurnSequenceStaysFeasible) {
  Rng rng(1007);
  auto positions = generate_udg(30, 4.0, 0.8, rng).positions;
  Graph graph = udg_from_positions(positions, 0.8);
  ArcColoring coloring = greedy_coloring(ArcView(graph));
  for (std::uint64_t step = 0; step < 10; ++step) {
    const std::size_t mover = rng.next_index(positions.size());
    positions[mover] = Point{rng.next_double() * 4.0,
                             rng.next_double() * 4.0};
    const Graph new_graph = udg_from_positions(positions, 0.8);
    const ArcView new_view(new_graph);
    const ArcColoring transferred =
        transfer_coloring(ArcView(graph), coloring, new_view);
    const auto result =
        run_distributed_repair(new_graph, transferred, 100 + step);
    ASSERT_TRUE(is_feasible_schedule(new_view, result.coloring))
        << "step " << step;
    graph = new_graph;
    coloring = result.coloring;
  }
}

TEST(DistRepair, AgreesWithCentralizedRepairOnCost) {
  // The distributed protocol's clearing is more conservative than the
  // centralized one's, but the cost must stay the same order of magnitude.
  Rng rng(1009);
  auto positions = generate_udg(35, 4.5, 0.8, rng).positions;
  const Graph old_graph = udg_from_positions(positions, 0.8);
  const ArcColoring old_coloring = greedy_coloring(ArcView(old_graph));
  positions[7] = Point{2.0, 2.0};
  const Graph new_graph = udg_from_positions(positions, 0.8);
  const ArcView new_view(new_graph);
  const ArcColoring transferred =
      transfer_coloring(ArcView(old_graph), old_coloring, new_view);

  const auto distributed = run_distributed_repair(new_graph, transferred, 11);
  const auto centralized = repair_schedule(new_view, transferred);
  EXPECT_TRUE(is_feasible_schedule(new_view, distributed.coloring));
  EXPECT_TRUE(is_feasible_schedule(new_view, centralized.coloring));
  if (centralized.recolored_arcs > 0) {
    EXPECT_LE(distributed.recolored_arcs,
              10 * centralized.recolored_arcs + 10);
  }
}

TEST(DistRepair, DeterministicUnderSeed) {
  Rng rng(1013);
  const Graph graph = generate_gnm(20, 40, rng);
  const ArcView view(graph);
  const ArcColoring empty(view.num_arcs());
  const auto a = run_distributed_repair(graph, empty, 77);
  const auto b = run_distributed_repair(graph, empty, 77);
  EXPECT_EQ(a.coloring.raw(), b.coloring.raw());
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(DistRepair, EdgelessGraph) {
  const auto result = run_distributed_repair(Graph(3), ArcColoring(0), 1);
  EXPECT_EQ(result.num_slots, 0u);
}

}  // namespace
}  // namespace fdlsp
