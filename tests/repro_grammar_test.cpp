// Round-trip tests for the two repro-string grammars: --faults=
// (sim/fault.h, format_fault_spec/parse_fault_spec) and --soak=
// (soak/event.h, format_soak_spec/parse_soak_spec). The printed form of a
// spec is the replay contract the harnesses hand to the user — parse must
// invert format exactly, and malformed strings must fail loudly instead of
// silently replaying a different scenario.
//
// The replay tool's engine-path flag (--shards=, examples/replay) rides the
// same contract: the flag it echoes into repro lines must parse back to the
// same shard count through the CLI layer the tool uses.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/fault.h"
#include "soak/event.h"
#include "support/check.h"
#include "support/cli.h"

namespace fdlsp {
namespace {

TEST(FaultSpecGrammar, DefaultSpecFormatsAsNone) {
  EXPECT_EQ(format_fault_spec(FaultSpec{}), "none");
}

TEST(FaultSpecGrammar, NoneAndEmptyParseToDefault) {
  EXPECT_EQ(parse_fault_spec("none"), FaultSpec{});
  EXPECT_EQ(parse_fault_spec(""), FaultSpec{});
}

TEST(FaultSpecGrammar, FullSpecRoundTrips) {
  FaultSpec spec;
  spec.seed = 7;
  spec.drop_rate = 0.1;
  spec.duplicate_rate = 0.05;
  spec.corrupt_rate = 0.02;
  spec.max_losses_per_channel = 3;
  spec.crash_fraction = 0.25;
  spec.crash_horizon = 32.0;
  spec.link_down_fraction = 0.125;
  spec.link_down_horizon = 8.0;
  spec.link_down_duration = 2.5;
  const std::string text = format_fault_spec(spec);
  EXPECT_EQ(parse_fault_spec(text), spec);
  // The printed form is itself a fixed point: format ∘ parse ∘ format is
  // format, so repro strings stay byte-stable across replays.
  EXPECT_EQ(format_fault_spec(parse_fault_spec(text)), text);
}

TEST(FaultSpecGrammar, PartialSpecRoundTrips) {
  FaultSpec spec;
  spec.drop_rate = 0.3;
  const std::string text = format_fault_spec(spec);
  EXPECT_EQ(text, "drop=0.3");
  EXPECT_EQ(parse_fault_spec(text), spec);
}

TEST(FaultSpecGrammar, BurstSpecRoundTrips) {
  FaultSpec spec;
  spec.burst_rate = 0.05;
  spec.burst_recover = 0.25;
  spec.burst_loss = 0.9;
  spec.burst_max_run = 6;
  spec.burst_cap = 12;
  const std::string text = format_fault_spec(spec);
  EXPECT_EQ(text, "bp=0.05,bq=0.25,bloss=0.9,bmax=6,bcap=12");
  EXPECT_EQ(parse_fault_spec(text), spec);
  EXPECT_EQ(format_fault_spec(parse_fault_spec(text)), text);
}

TEST(FaultSpecGrammar, PrrLevelsRoundTripColonSeparated) {
  FaultSpec spec;
  spec.prr_levels = {0.9, 0.75, 0.5};
  const std::string text = format_fault_spec(spec);
  EXPECT_EQ(text, "prr=0.9:0.75:0.5");
  EXPECT_EQ(parse_fault_spec(text), spec);
  EXPECT_EQ(format_fault_spec(parse_fault_spec(text)), text);
}

TEST(FaultSpecGrammar, RegionOutageSpecRoundTrips) {
  FaultSpec spec;
  spec.region_count = 3;
  spec.region_radius = 0.5;
  spec.region_horizon = 24.0;
  spec.region_duration = 6.0;
  const std::string text = format_fault_spec(spec);
  EXPECT_EQ(text, "regions=3,regionr=0.5,regionh=24,regiond=6");
  EXPECT_EQ(parse_fault_spec(text), spec);
  EXPECT_EQ(format_fault_spec(parse_fault_spec(text)), text);
}

TEST(FaultSpecGrammar, MixedCorrelatedSpecRoundTrips) {
  FaultSpec spec;
  spec.seed = 11;
  spec.drop_rate = 0.05;
  spec.burst_rate = 0.1;
  spec.prr_levels = {0.8};
  spec.region_count = 1;
  spec.crash_fraction = 0.2;
  const std::string text = format_fault_spec(spec);
  EXPECT_EQ(parse_fault_spec(text), spec);
  EXPECT_EQ(format_fault_spec(parse_fault_spec(text)), text);
}

TEST(FaultSpecGrammar, MalformedEntriesAreRejected) {
  EXPECT_THROW(parse_fault_spec("drop"), contract_error);         // no '='
  EXPECT_THROW(parse_fault_spec("drop=0.1,zzz=4"), contract_error);
  EXPECT_THROW(parse_fault_spec("frobnicate=1"), contract_error);
  // Strict numeric parsing: trailing garbage and empty values fail loudly
  // instead of silently replaying a different scenario.
  EXPECT_THROW(parse_fault_spec("drop=0.1x"), contract_error);
  EXPECT_THROW(parse_fault_spec("drop="), contract_error);
  EXPECT_THROW(parse_fault_spec("bp=high"), contract_error);
  EXPECT_THROW(parse_fault_spec("bmax=3.5"), contract_error);   // not a count
  EXPECT_THROW(parse_fault_spec("bcap=-1"), contract_error);
  EXPECT_THROW(parse_fault_spec("regions=two"), contract_error);
  EXPECT_THROW(parse_fault_spec("prr=0.9:oops"), contract_error);
  EXPECT_THROW(parse_fault_spec("prr="), contract_error);
  EXPECT_THROW(parse_fault_spec("prr=0.9:"), contract_error);
}

TEST(SoakSpecGrammar, DefaultSpecFormatsAsDefault) {
  EXPECT_EQ(format_soak_spec(SoakSpec{}), "default");
}

TEST(SoakSpecGrammar, DefaultAndEmptyParseToDefault) {
  EXPECT_EQ(parse_soak_spec("default"), SoakSpec{});
  EXPECT_EQ(parse_soak_spec(""), SoakSpec{});
}

TEST(SoakSpecGrammar, FullSpecRoundTrips) {
  SoakSpec spec;
  spec.seed = 99;
  spec.n = 128;
  spec.events = 5000;
  spec.family = "grid";
  spec.density = 0.75;
  spec.side = 12.5;
  spec.radius = 1.5;
  spec.alive_fraction = 0.8;
  spec.move_step = 0.25;
  spec.join_weight = 2.0;
  spec.leave_weight = 0.0;
  spec.move_weight = 3.0;
  spec.link_down_weight = 0.5;
  spec.link_up_weight = 1.5;
  spec.repair_threshold = 0.1;
  spec.drift_band = 2.0;
  spec.skip = {1, 5, 9};
  const std::string text = format_soak_spec(spec);
  EXPECT_EQ(parse_soak_spec(text), spec);
  EXPECT_EQ(format_soak_spec(parse_soak_spec(text)), text);
}

TEST(SoakSpecGrammar, SkipListUsesDotSeparators) {
  SoakSpec spec;
  spec.skip = {3, 14, 159};
  const std::string text = format_soak_spec(spec);
  EXPECT_EQ(text, "skip=3.14.159");
  EXPECT_EQ(parse_soak_spec(text), spec);
}

TEST(SoakSpecGrammar, MalformedEntriesAreRejected) {
  EXPECT_THROW(parse_soak_spec("events"), contract_error);      // no '='
  EXPECT_THROW(parse_soak_spec("n=abc"), contract_error);       // bad int
  EXPECT_THROW(parse_soak_spec("radius=wide"), contract_error); // bad double
  EXPECT_THROW(parse_soak_spec("zzz=1"), contract_error);       // unknown key
  EXPECT_THROW(parse_soak_spec("skip=1.x.3"), contract_error);  // bad index
}

/// Parses an argv-style flag list through the CLI layer examples/replay
/// uses and returns the shard count it would replay with.
std::size_t parse_shards_flag(const std::vector<std::string>& flags) {
  std::vector<const char*> argv = {"replay"};
  for (const std::string& flag : flags) argv.push_back(flag.c_str());
  const CliArgs args(static_cast<int>(argv.size()), argv.data());
  return static_cast<std::size_t>(args.get_int("shards", 0));
}

TEST(ReplayShardsFlag, EchoedFlagRoundTripsThroughCli) {
  // replay echoes "--shards=N" into the repro lines it prints; pasting that
  // line back must select the same engine shard count.
  for (const std::size_t shards : {1u, 2u, 4u, 8u, 17u}) {
    const std::string flag = "--shards=" + std::to_string(shards);
    EXPECT_EQ(parse_shards_flag({flag}), shards) << flag;
  }
  // Absent flag = serial path, matching replay's default, and the flag
  // composes with the spec grammars on a full repro line.
  EXPECT_EQ(parse_shards_flag({}), 0u);
  EXPECT_EQ(parse_shards_flag({"--soak=seed=7,n=200,events=5000",
                               "--faults=drop=0.1", "--shards=4"}),
            4u);
}

}  // namespace
}  // namespace fdlsp
