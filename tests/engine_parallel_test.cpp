// Property suite for the simulation runtime performance layer.
//
// 1. SmallPayload: the zero-alloc message payload must behave exactly like
//    a vector at the API level — inline up to 4 words, transparent heap
//    spill beyond, value-type copy/move/equality — because every protocol
//    in src/algos reads and writes message.data through that interface.
// 2. Parallel rounds: SyncEngine sharded across a ThreadPool must be
//    BYTE-IDENTICAL to the serial engine — same coloring bytes, same
//    rounds, same message counts — for any thread count. Verified for
//    every engine-backed scheduler across all six scenario families.
// 3. run_scenarios: the sharded sweep driver must report identical counts
//    and identical (lowest-index-first) failure ordering for any pool.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "algos/dist_mis.h"
#include "algos/dist_repair.h"
#include "algos/scheduler.h"
#include "coloring/coloring.h"
#include "coloring/greedy.h"
#include "exp/workloads.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "sim/shard.h"
#include "sim/sync_engine.h"
#include "support/rng.h"
#include "support/small_payload.h"
#include "support/thread_pool.h"
#include "verify/differential.h"
#include "verify/scenario.h"

namespace fdlsp {
namespace {

// ---------------------------------------------------------------------------
// SmallPayload
// ---------------------------------------------------------------------------

TEST(SmallPayload, StaysInlineUpToCapacity) {
  SmallPayload p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.capacity(), SmallPayload::kInlineCapacity);
  for (std::int64_t i = 0; i < 4; ++i) p.push_back(i * 10);
  EXPECT_EQ(p.size(), 4u);
  EXPECT_FALSE(p.spilled());
  for (std::int64_t i = 0; i < 4; ++i)
    EXPECT_EQ(p[static_cast<std::size_t>(i)], i * 10);
}

TEST(SmallPayload, SpillsPastCapacityAndPreservesContents) {
  SmallPayload p;
  for (std::int64_t i = 0; i < 5; ++i) p.push_back(i);
  EXPECT_TRUE(p.spilled());
  EXPECT_EQ(p.size(), 5u);
  EXPECT_GE(p.capacity(), 5u);
  for (std::int64_t i = 0; i < 5; ++i)
    EXPECT_EQ(p[static_cast<std::size_t>(i)], i);
  // Keep growing well past the first spill.
  for (std::int64_t i = 5; i < 100; ++i) p.push_back(i);
  EXPECT_EQ(p.size(), 100u);
  EXPECT_EQ(p.front(), 0);
  EXPECT_EQ(p.back(), 99);
}

TEST(SmallPayload, ClearResetsSizeButKeepsCapacity) {
  SmallPayload p;
  for (std::int64_t i = 0; i < 32; ++i) p.push_back(i);
  const std::size_t grown = p.capacity();
  EXPECT_GE(grown, 32u);
  p.clear();
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.capacity(), grown);  // slab semantics: reset, not freed
  EXPECT_TRUE(p.spilled());
  for (std::int64_t i = 0; i < 32; ++i) p.push_back(i);
  EXPECT_EQ(p.capacity(), grown);  // refill did not reallocate
}

TEST(SmallPayload, MoveStealsHeapAndEmptiesSource) {
  SmallPayload big;
  for (std::int64_t i = 0; i < 20; ++i) big.push_back(i);
  const std::int64_t* storage = big.data();
  SmallPayload moved(std::move(big));
  EXPECT_EQ(moved.data(), storage);  // heap buffer stolen, not copied
  EXPECT_EQ(moved.size(), 20u);
  EXPECT_TRUE(big.empty());  // NOLINT(bugprone-use-after-move): spec'd state
  EXPECT_FALSE(big.spilled());

  SmallPayload small{1, 2, 3};
  SmallPayload small_moved(std::move(small));
  EXPECT_EQ(small_moved, (SmallPayload{1, 2, 3}));
  EXPECT_FALSE(small_moved.spilled());
}

TEST(SmallPayload, MoveAssignIntoSpilledReusesNothingLeaks) {
  SmallPayload a;
  for (std::int64_t i = 0; i < 10; ++i) a.push_back(i);
  SmallPayload b;
  for (std::int64_t i = 0; i < 40; ++i) b.push_back(-i);
  b = std::move(a);
  EXPECT_EQ(b.size(), 10u);
  for (std::int64_t i = 0; i < 10; ++i)
    EXPECT_EQ(b[static_cast<std::size_t>(i)], i);
}

TEST(SmallPayload, EqualityIsValueBasedAcrossStorageModes) {
  SmallPayload inline_side{7, 8, 9};
  SmallPayload heap_side;
  for (std::int64_t i = 0; i < 6; ++i) heap_side.push_back(i);  // spill it
  heap_side.clear();
  for (std::int64_t v : {7, 8, 9}) heap_side.push_back(v);
  EXPECT_TRUE(heap_side.spilled());
  EXPECT_FALSE(inline_side.spilled());
  EXPECT_EQ(inline_side, heap_side);  // same values, different storage
  heap_side.push_back(10);
  EXPECT_NE(inline_side, heap_side);
}

TEST(SmallPayload, VectorInterop) {
  const std::vector<std::int64_t> source{4, 5, 6, 7, 8, 9};
  SmallPayload from_vector = source;  // implicit, call sites assign vectors
  EXPECT_EQ(from_vector.size(), source.size());
  EXPECT_TRUE(std::equal(from_vector.begin(), from_vector.end(),
                         source.begin()));
  SmallPayload assigned;
  assigned.push_back(-1);
  assigned = source;
  EXPECT_EQ(assigned, from_vector);
}

TEST(SmallPayload, InsertAndAssignRanges) {
  SmallPayload p{1, 5};
  const std::vector<std::int64_t> middle{2, 3, 4};
  p.insert(p.begin() + 1, middle.begin(), middle.end());
  EXPECT_EQ(p, (SmallPayload{1, 2, 3, 4, 5}));
  const std::vector<std::int64_t> fresh{9, 8};
  p.assign(fresh.begin(), fresh.end());
  EXPECT_EQ(p, (SmallPayload{9, 8}));
  p.pop_back();
  EXPECT_EQ(p, (SmallPayload{9}));
}

// ---------------------------------------------------------------------------
// Parallel rounds: byte-identical to serial for any thread count
// ---------------------------------------------------------------------------

/// Engine-backed schedulers (the ones a ThreadPool actually reaches).
constexpr SchedulerKind kEngineKinds[] = {SchedulerKind::kDistMisGbg,
                                          SchedulerKind::kDistMisGeneral,
                                          SchedulerKind::kRandomized};

TEST(ParallelEngine, ByteIdenticalToSerialForAnyThreadCount) {
  const std::vector<Scenario> scenarios = sample_scenarios(18, 0x9a11e1, 24);
  for (std::size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    for (const SchedulerKind kind : kEngineKinds) {
      for (const Scenario& scenario : scenarios) {
        const Graph graph = materialize(scenario);
        const ScheduleResult serial =
            run_scheduler(kind, graph, scenario.seed);
        const ScheduleResult parallel =
            run_scheduler_parallel(kind, graph, scenario.seed, pool);
        ASSERT_EQ(serial.coloring.raw(), parallel.coloring.raw())
            << "threads=" << threads << " "
            << repro_command(scenario, kind);
        EXPECT_EQ(serial.num_slots, parallel.num_slots);
        EXPECT_EQ(serial.rounds, parallel.rounds);
        EXPECT_EQ(serial.messages, parallel.messages);
        EXPECT_EQ(serial.completed, parallel.completed);
      }
    }
  }
}

TEST(ParallelEngine, AllSixFamiliesCovered) {
  // sample_scenarios cycles families; make coverage explicit so a future
  // sampler change can't silently shrink this suite's reach.
  const std::vector<Scenario> scenarios = sample_scenarios(18, 0x9a11e1, 24);
  std::vector<bool> seen(6, false);
  for (const Scenario& scenario : scenarios)
    seen[static_cast<std::size_t>(scenario.family)] = true;
  for (const GraphFamily family : kAllFamilies)
    EXPECT_TRUE(seen[static_cast<std::size_t>(family)])
        << "family not sampled: " << family_name(family);
}

TEST(ParallelEngine, DistributedRepairMatchesSerial) {
  Rng rng(0x5eed);
  const Graph graph = generate_gnm(40, 110, rng);
  const ArcView view(graph);
  ArcColoring stale = greedy_coloring(view);
  // Invalidate a slice of the schedule so repair has real work to do.
  for (ArcId a = 0; a < stale.num_arcs(); a += 3) stale.clear(a);
  const DistRepairResult serial = run_distributed_repair(graph, stale, 11);
  ThreadPool pool(4);
  const DistRepairResult parallel = run_distributed_repair(
      graph, stale, 11, 1'000'000, nullptr, nullptr, false, &pool);
  EXPECT_EQ(serial.coloring.raw(), parallel.coloring.raw());
  EXPECT_EQ(serial.recolored_arcs, parallel.recolored_arcs);
  EXPECT_EQ(serial.rounds, parallel.rounds);
  EXPECT_EQ(serial.messages, parallel.messages);
}

TEST(ParallelEngine, PoolReusableAcrossRuns) {
  // One pool, many runs: the engine must leave no residue in the pool or
  // in itself between runs.
  ThreadPool pool(3);
  const Graph graph = generate_cycle(20);
  const ScheduleResult first = run_scheduler_parallel(
      SchedulerKind::kDistMisGbg, graph, 42, pool);
  const ScheduleResult second = run_scheduler_parallel(
      SchedulerKind::kDistMisGbg, graph, 42, pool);
  EXPECT_EQ(first.coloring.raw(), second.coloring.raw());
  EXPECT_EQ(first.rounds, second.rounds);
  EXPECT_EQ(first.messages, second.messages);
}

// ---------------------------------------------------------------------------
// Sharded state: byte-identical to serial for any shard count
// ---------------------------------------------------------------------------

TEST(ShardedEngine, ShardPlanPartitionsContiguouslyAndInvertsExactly) {
  for (const std::size_t n : {1u, 2u, 7u, 24u, 1000u}) {
    for (const std::size_t count : {1u, 2u, 4u, 8u}) {
      if (count > n) continue;
      const ShardPlan plan{n, count};
      std::size_t covered = 0;
      for (std::size_t s = 0; s < count; ++s) {
        ASSERT_EQ(plan.lo(s), covered) << "gap at shard " << s;
        ASSERT_LE(plan.lo(s), plan.hi(s));
        for (std::size_t v = plan.lo(s); v < plan.hi(s); ++v)
          ASSERT_EQ(plan.shard_of(static_cast<NodeId>(v)), s)
              << "n=" << n << " count=" << count << " v=" << v;
        covered = plan.hi(s);
      }
      EXPECT_EQ(covered, n);  // shards cover [0, n) exactly
    }
  }
}

// The tentpole contract: with engine *state* partitioned into 1/2/4/8
// contiguous shards — per-shard send lanes, ChannelTable slices, SoA
// protocol scratch — every engine-backed scheduler must stay byte-identical
// to the serial run across all six scenario families. The probe lives in
// src/verify so other batteries can sweep it too.
TEST(ShardedEngine, ByteIdenticalToSerialForAnyShardCount) {
  const std::vector<Scenario> scenarios = sample_scenarios(18, 0x9a11e1, 24);
  constexpr std::size_t kShardCounts[] = {1, 2, 4, 8};
  ThreadPool pool(4);
  for (const SchedulerKind kind : kEngineKinds) {
    const ScenarioCheckFn check = [&](const Scenario& scenario, std::size_t) {
      return check_shard_determinism(kind, scenario, kShardCounts, pool);
    };
    const ScenarioSweep sweep = run_scenarios(scenarios, check, nullptr);
    EXPECT_EQ(sweep.checks, scenarios.size() * std::size(kShardCounts));
    EXPECT_TRUE(sweep.ok()) << sweep.failure_digest();
  }
}

// A crash-fault plan is an adversary channel: it must force the serial path
// even when a pool and an explicit shard count are configured (mirrors the
// trace-seam check), and the faulted result must be byte-identical to the
// serial faulted run — crash drops included.
TEST(ShardedEngine, FaultPlanForcesSerialPathWithShardingConfigured) {
  const std::vector<Scenario> scenarios = sample_scenarios(6, 0xc7a54, 20);
  FaultSpec spec;
  spec.crash_fraction = 0.2;
  ThreadPool pool(4);
  for (const Scenario& scenario : scenarios) {
    const Graph graph = materialize(scenario);
    DistMisOptions serial_options;
    serial_options.seed = scenario.seed;
    serial_options.faults = &spec;
    const ScheduleResult serial = run_dist_mis(graph, serial_options);
    DistMisOptions sharded_options = serial_options;
    sharded_options.pool = &pool;
    sharded_options.shards = 4;
    const ScheduleResult sharded = run_dist_mis(graph, sharded_options);
    ASSERT_EQ(serial.coloring.raw(), sharded.coloring.raw())
        << repro_command(scenario, SchedulerKind::kDistMisGbg);
    EXPECT_EQ(serial.rounds, sharded.rounds);
    EXPECT_EQ(serial.messages, sharded.messages);
    EXPECT_EQ(serial.completed, sharded.completed);
    EXPECT_EQ(serial.faults.crash_drops, sharded.faults.crash_drops);
  }
  // The seam decision itself, stated directly on the engine: pool + shards
  // configured, but an installed fault plan pins the plan to one shard.
  const Graph graph = materialize(scenarios.front());
  std::vector<std::unique_ptr<SyncProgram>> none;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) none.push_back(nullptr);
  SyncEngine engine(graph, std::move(none));
  engine.set_thread_pool(&pool);
  engine.set_shards(4);
  EXPECT_EQ(engine.planned_shards(), 4u);
  FaultPlan plan(spec, graph);
  engine.set_fault_plan(&plan);
  EXPECT_EQ(engine.planned_shards(), 1u);
}

TEST(ShardedEngine, ReliableWrapperRunsShardedAndMatchesSerial) {
  // The reliable path drives the SoA set through per-node adapters; the
  // sharded run must still match the serial one byte-for-byte.
  const std::vector<Scenario> scenarios = sample_scenarios(4, 0xab1e, 16);
  ThreadPool pool(4);
  for (const Scenario& scenario : scenarios) {
    const Graph graph = materialize(scenario);
    DistMisOptions serial_options;
    serial_options.seed = scenario.seed;
    serial_options.reliable = true;
    const ScheduleResult serial = run_dist_mis(graph, serial_options);
    DistMisOptions sharded_options = serial_options;
    sharded_options.pool = &pool;
    sharded_options.shards = 4;
    const ScheduleResult sharded = run_dist_mis(graph, sharded_options);
    ASSERT_EQ(serial.coloring.raw(), sharded.coloring.raw())
        << repro_command(scenario, SchedulerKind::kDistMisGbg);
    EXPECT_EQ(serial.rounds, sharded.rounds);
    EXPECT_EQ(serial.messages, sharded.messages);
  }
}

TEST(ShardedEngine, RepairMatchesSerialForExplicitShardCounts) {
  Rng rng(0x5eed);
  const Graph graph = generate_gnm(40, 110, rng);
  const ArcView view(graph);
  ArcColoring stale = greedy_coloring(view);
  for (ArcId a = 0; a < stale.num_arcs(); a += 3) stale.clear(a);
  const DistRepairResult serial = run_distributed_repair(graph, stale, 11);
  ThreadPool pool(4);
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    const DistRepairResult sharded = run_distributed_repair(
        graph, stale, 11, 1'000'000, nullptr, nullptr, false, &pool, shards);
    ASSERT_EQ(serial.coloring.raw(), sharded.coloring.raw())
        << "shards=" << shards;
    EXPECT_EQ(serial.recolored_arcs, sharded.recolored_arcs);
    EXPECT_EQ(serial.rounds, sharded.rounds);
    EXPECT_EQ(serial.messages, sharded.messages);
  }
}

// ---------------------------------------------------------------------------
// run_scenarios: sharded sweep determinism
// ---------------------------------------------------------------------------

TEST(RunScenarios, PooledSweepMatchesSerialIncludingFailureOrder) {
  const std::vector<Scenario> scenarios = sample_scenarios(40, 0xabcd, 16);
  // A synthetic check that fails on a scattered subset of indices with an
  // index-tagged message, so ordering mistakes are visible.
  const ScenarioCheckFn check = [](const Scenario& scenario,
                                   std::size_t index) {
    ScenarioOutcome outcome;
    outcome.checks = 2;
    if (index % 7 == 3)
      outcome.failures.push_back("fail@" + std::to_string(index) + " " +
                                 family_name(scenario.family));
    return outcome;
  };
  const ScenarioSweep serial = run_scenarios(scenarios, check, nullptr);
  EXPECT_EQ(serial.scenarios, scenarios.size());
  EXPECT_EQ(serial.checks, 2 * scenarios.size());
  ASSERT_FALSE(serial.ok());
  for (std::size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    const ScenarioSweep pooled = run_scenarios(scenarios, check, &pool);
    EXPECT_EQ(pooled.scenarios, serial.scenarios);
    EXPECT_EQ(pooled.checks, serial.checks);
    EXPECT_EQ(pooled.failures, serial.failures);  // lowest index first
  }
  // The digest joins in the same (index) order.
  EXPECT_NE(serial.failure_digest().find("fail@3"), std::string::npos);
}

// The natural composition of the two parallel grains: a pooled sweep whose
// check runs a pooled engine on the *same* pool. The inner wait-for-idle
// would deadlock on its own task, so both the engine and parallel_for
// detect they are on a worker thread and degrade to serial — same results,
// no hang (this test used to deadlock before ThreadPool::on_worker_thread).
TEST(RunScenarios, NestedPooledEngineOnSharedPoolDegradesToSerial) {
  const std::vector<Scenario> scenarios = sample_scenarios(8, 0x5eed, 18);
  ThreadPool pool(4);
  const ScenarioCheckFn nested = [&](const Scenario& scenario, std::size_t) {
    ScenarioOutcome outcome;
    const Graph graph = materialize(scenario);
    const ScheduleResult serial =
        run_scheduler_on_components(SchedulerKind::kDistMisGbg, graph, 7);
    const ScheduleResult pooled =
        run_scheduler_parallel(SchedulerKind::kDistMisGbg, graph, 7, pool);
    ++outcome.checks;
    if (serial.coloring.raw() != pooled.coloring.raw() ||
        serial.messages != pooled.messages)
      outcome.failures.push_back("nested pooled run diverged");
    return outcome;
  };
  const ScenarioSweep sweep = run_scenarios(scenarios, nested, &pool);
  EXPECT_EQ(sweep.checks, scenarios.size());
  EXPECT_TRUE(sweep.ok()) << sweep.failure_digest();
}

TEST(RunScenarios, RealOracleSweepAgreesWithFuzzScheduler) {
  const std::vector<Scenario> scenarios = sample_scenarios(10, 0xf00d, 14);
  ThreadPool pool(4);
  const FuzzSummary serial =
      fuzz_scheduler(SchedulerKind::kDistMisGbg, scenarios);
  const FuzzSummary pooled =
      fuzz_scheduler(SchedulerKind::kDistMisGbg, scenarios, &pool);
  EXPECT_EQ(serial.scenarios, pooled.scenarios);
  ASSERT_EQ(serial.failures.size(), pooled.failures.size());
  for (std::size_t i = 0; i < serial.failures.size(); ++i)
    EXPECT_EQ(to_string(serial.failures[i]), to_string(pooled.failures[i]));
}

}  // namespace
}  // namespace fdlsp
