// End-to-end integration at paper scale: a 300-node UDG field goes through
// every scheduler; each schedule is validated by the conflict checker AND
// the physical radio replay, then carries a convergecast epoch.
#include <gtest/gtest.h>

#include "algos/scheduler.h"
#include "coloring/bounds.h"
#include "coloring/checker.h"
#include "exp/workloads.h"
#include "graph/algorithms.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "support/rng.h"
#include "tdma/convergecast.h"
#include "tdma/energy.h"
#include "tdma/radio_sim.h"
#include "tdma/schedule.h"

namespace fdlsp {
namespace {

class PaperScaleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(2026);
    // Paper-scale field: n = 300 on the unit-scaled 15-plan.
    auto geo = generate_udg(300, 7.5, 0.5, rng);
    field_ = new Graph(
        induced_subgraph(geo.graph, largest_component(geo.graph)).graph);
  }
  static void TearDownTestSuite() {
    delete field_;
    field_ = nullptr;
  }

  static Graph* field_;
};

Graph* PaperScaleTest::field_ = nullptr;

TEST_F(PaperScaleTest, FieldIsNontrivial) {
  ASSERT_GE(field_->num_nodes(), 50u);
  ASSERT_GE(field_->num_edges(), field_->num_nodes() / 2);
  EXPECT_TRUE(is_connected(*field_));
}

TEST_F(PaperScaleTest, EverySchedulerSurvivesFullPipeline) {
  const ArcView view(*field_);
  for (SchedulerKind kind :
       {SchedulerKind::kDistMisGbg, SchedulerKind::kDistMisGeneral,
        SchedulerKind::kDfs, SchedulerKind::kDmgc, SchedulerKind::kGreedy,
        SchedulerKind::kRandomized}) {
    const ScheduleResult result =
        run_scheduler_on_components(kind, *field_, 5);
    ASSERT_TRUE(is_feasible_schedule(view, result.coloring))
        << scheduler_name(kind);
    EXPECT_GE(result.num_slots, lower_bound_theorem1(*field_))
        << scheduler_name(kind);

    const TdmaSchedule schedule(view, result.coloring);
    const RadioReport radio = replay_frame(schedule);
    EXPECT_TRUE(radio.collision_free()) << scheduler_name(kind);
    EXPECT_EQ(radio.delivered, view.num_arcs()) << scheduler_name(kind);

    const ConvergecastReport traffic = run_convergecast(schedule, 0);
    EXPECT_EQ(traffic.packets_delivered, field_->num_nodes() - 1)
        << scheduler_name(kind);

    const EnergyReport energy = account_energy(schedule);
    EXPECT_GT(energy.total_energy, 0.0);
    EXPECT_LE(energy.max_duty_cycle, 1.0);
  }
}

TEST_F(PaperScaleTest, ProposedBeatDmgcHere) {
  const auto dmgc =
      run_scheduler_on_components(SchedulerKind::kDmgc, *field_, 5);
  const auto dfs =
      run_scheduler_on_components(SchedulerKind::kDfs, *field_, 5);
  const auto mis =
      run_scheduler_on_components(SchedulerKind::kDistMisGbg, *field_, 5);
  EXPECT_LE(dfs.num_slots, dmgc.num_slots);
  EXPECT_LE(mis.num_slots, dmgc.num_slots + 2);  // near-tie tolerated
}

}  // namespace
}  // namespace fdlsp
