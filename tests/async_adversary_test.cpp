// Adversarial delay-schedule tests for the asynchronous engine and the
// algorithms that run on it.
//
// The adversary reorders deliveries across channels (within per-channel
// FIFO) as aggressively as the (0, 1] delay model allows. DFS must produce
// a feasible schedule under 50 distinct adversarial seeds; DistMIS (being
// synchronous) is swept over the same 50 seeds through its own randomness.
// The engine-level tests pin the new delay-schedule hook: FIFO order is
// never violated, schedules are reproducible from the seed, and the
// adversary actually produces different interleavings than unit delay.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "algos/dfs_schedule.h"
#include "algos/dist_mis.h"
#include "coloring/checker.h"
#include "graph/algorithms.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "sim/async_engine.h"
#include "sim/delay.h"
#include "support/rng.h"

namespace fdlsp {
namespace {

constexpr std::size_t kAdversarySeeds = 50;

// Flood program: every node broadcasts once at start and echoes the first
// message it receives; generates multi-message channels so FIFO matters.
class FloodProgram : public AsyncProgram {
 public:
  void on_start(AsyncContext& ctx) override {
    ctx.broadcast(Message{kNoNode, 1, {static_cast<std::int64_t>(ctx.self())}});
  }
  void on_message(AsyncContext& ctx, Message& message) override {
    ++received_;
    if (message.tag == 1)
      ctx.broadcast(Message{kNoNode, 2, {message.data[0]}});
  }
  bool finished() const override { return received_ > 0; }

 private:
  std::size_t received_ = 0;
};

AsyncMetrics run_flood(const Graph& graph, DelayModel model,
                       std::uint64_t seed) {
  std::vector<std::unique_ptr<AsyncProgram>> programs;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    (void)v;
    programs.push_back(std::make_unique<FloodProgram>());
  }
  AsyncEngine engine(graph, std::move(programs), model, seed);
  return engine.run();
}

TEST(AsyncAdversary, FifoNeverViolatedAcrossSeeds) {
  Rng rng(515);
  const Graph graph = generate_gnm(24, 60, rng);
  for (std::uint64_t seed = 1; seed <= kAdversarySeeds; ++seed) {
    const AsyncMetrics metrics =
        run_flood(graph, DelayModel::kAdversarial, seed);
    EXPECT_TRUE(metrics.fifo_ok) << "adversary seed " << seed;
    EXPECT_TRUE(metrics.completed);
    EXPECT_GT(metrics.messages, 0u);
  }
}

TEST(AsyncAdversary, DelaysStayWithinAsynchronousTimeModel) {
  AdversarialDelay schedule(99);
  for (ArcId channel = 0; channel < 64; ++channel) {
    for (std::uint64_t index = 0; index < 16; ++index) {
      const double d = schedule.delay(channel, index);
      EXPECT_GT(d, 0.0);
      EXPECT_LE(d, 1.0);
      // Stateless: repeated queries agree.
      EXPECT_EQ(d, schedule.delay(channel, index));
    }
  }
}

TEST(AsyncAdversary, AdversaryProducesDistinctInterleavings) {
  Rng rng(517);
  const Graph graph = generate_gnm(20, 50, rng);
  const AsyncMetrics unit = run_flood(graph, DelayModel::kUnit, 1);
  std::size_t distinct = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const AsyncMetrics adv =
        run_flood(graph, DelayModel::kAdversarial, seed);
    if (adv.completion_time != unit.completion_time) ++distinct;
  }
  // The adversary would be useless if it reproduced the unit timing.
  EXPECT_GT(distinct, 0u);
}

TEST(AsyncAdversary, DfsFeasibleUnderFiftyAdversarySeeds) {
  Rng rng(519);
  Graph graph = generate_gnm(14, 26, rng);
  while (!is_connected(graph)) graph = generate_gnm(14, 26, rng);
  const ArcView view(graph);
  for (std::uint64_t seed = 1; seed <= kAdversarySeeds; ++seed) {
    DfsOptions options;
    options.delay_model = DelayModel::kAdversarial;
    options.seed = seed;
    const ScheduleResult result = run_dfs_schedule(graph, options);
    ASSERT_TRUE(is_feasible_schedule(view, result.coloring))
        << "adversary seed " << seed;
  }
}

TEST(AsyncAdversary, DfsFeasibleUnderAdversaryOnUdg) {
  Rng rng(521);
  const auto geo = generate_udg(30, 4.0, 1.2, rng);
  const auto nodes = largest_component(geo.graph);
  const Graph graph = induced_subgraph(geo.graph, nodes).graph;
  const ArcView view(graph);
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    DfsOptions options;
    options.delay_model = DelayModel::kAdversarial;
    options.seed = seed;
    const ScheduleResult result = run_dfs_schedule(graph, options);
    ASSERT_TRUE(is_feasible_schedule(view, result.coloring))
        << "adversary seed " << seed;
  }
}

TEST(AsyncAdversary, DistMisFeasibleUnderFiftySeeds) {
  Rng rng(523);
  const Graph graph = generate_gnm(16, 32, rng);
  const ArcView view(graph);
  for (std::uint64_t seed = 1; seed <= kAdversarySeeds; ++seed) {
    for (const DistMisVariant variant :
         {DistMisVariant::kGbg, DistMisVariant::kGeneral}) {
      DistMisOptions options;
      options.variant = variant;
      options.seed = seed;
      const ScheduleResult result = run_dist_mis(graph, options);
      ASSERT_TRUE(is_feasible_schedule(view, result.coloring))
          << "seed " << seed;
    }
  }
}

TEST(AsyncAdversary, AdversarialRunReproducibleFromSeed) {
  Rng rng(525);
  Graph graph = generate_gnm(12, 22, rng);
  while (!is_connected(graph)) graph = generate_gnm(12, 22, rng);
  for (std::uint64_t seed : {3ULL, 41ULL, 997ULL}) {
    DfsOptions options;
    options.delay_model = DelayModel::kAdversarial;
    options.seed = seed;
    const ScheduleResult a = run_dfs_schedule(graph, options);
    const ScheduleResult b = run_dfs_schedule(graph, options);
    EXPECT_EQ(a.coloring.raw(), b.coloring.raw()) << "seed " << seed;
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.async_time, b.async_time);
  }
}

}  // namespace
}  // namespace fdlsp
