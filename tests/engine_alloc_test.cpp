// Machine-checks DESIGN.md §11's zero-alloc claim for the steady-state
// message path: a full DistMIS-GBG run on the paper-scale UDG fixture
// (n=1000, average degree ~6 — the headline BM_DistMisUdg row) must reach a
// state where rounds stop touching the allocator entirely, on the serial
// engine AND the sharded pooled engine.
//
// The assertions are margin-based rather than exact counts so that benign
// library-version drift in container growth policies does not break the
// gate, while a regression that reintroduces per-message allocator traffic
// (~250 allocations/round on this fixture, ~113k per run before the
// zero-alloc work) blows through every bound at once. Measured profile at
// the time of writing: ~30k total allocations, warm-up confined to the
// first ~430 of 451 rounds, and a 20+ round allocation-free tail.
//
// The asynchronous engine is held to the same standard, per *event* instead
// of per round: a DistMIS run behind the α-synchronizer — serial and for
// every shard count — and a run hardened with the reliable wrapper must
// both reach an allocation-free steady-state tail. That covers the slab
// event storage, the per-shard calendar queues and cross-shard lanes, the
// synchronizer's frame recycling, and the reliable wrapper's frame pool.
//
// Under sanitizers the counting operator new hooks are compiled out
// (support/alloc_audit.h) and the whole suite skips.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "algos/dist_mis.h"
#include "graph/generators.h"
#include "sim/async_engine.h"
#include "support/alloc_audit.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace fdlsp {
namespace {

/// The BM_DistMisUdg fixture: n nodes on a square sized for average degree
/// ~6 at transmission radius 0.5.
Graph paper_udg(std::size_t n) {
  const double radius = 0.5;
  const double side =
      std::sqrt(static_cast<double>(n) * 3.14159265 * radius * radius / 6.0);
  Rng rng(42);
  return generate_udg(n, side, radius, rng).graph;
}

/// Runs DistMIS-GBG with the auditor attached and asserts the steady-state
/// allocation profile. `pool` may be null (serial engine); `shards` is the
/// explicit engine shard count (0 = pool-derived).
void assert_steady_state_profile(const Graph& graph, ThreadPool* pool,
                                 std::size_t shards = 0) {
  AllocAudit audit;
  std::vector<std::uint64_t> history;
  history.reserve(2048);
  audit.set_history(&history);

  DistMisOptions options;
  options.variant = DistMisVariant::kGbg;
  options.seed = 42;
  options.pool = pool;
  options.shards = shards;
  options.audit = &audit;
  const ScheduleResult result = run_dist_mis(graph, options);

  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.num_slots, 0U);
  // The auditor bracketed every engine round, and the history is its
  // per-round expansion.
  ASSERT_EQ(audit.rounds(), result.rounds);
  ASSERT_EQ(history.size(), result.rounds);
  EXPECT_EQ(std::accumulate(history.begin(), history.end(), std::uint64_t{0}),
            audit.total_allocations());
  ASSERT_GT(audit.rounds(), 100U) << "fixture too small to have a steady state";

  // The core invariant: allocator traffic is warm-up, not steady state.
  // (1) The run ends with a real allocation-free tail.
  ASSERT_NE(audit.last_allocating_round(), AllocAudit::kNoRound);
  EXPECT_LE(audit.last_allocating_round() + 20, audit.rounds())
      << "no allocation-free tail — the steady-state path allocates";
  // (2) Most rounds never allocate at all.
  EXPECT_LE(audit.allocating_rounds(), 2 * audit.rounds() / 3);
  // (3) Total traffic stays an order of magnitude under the ~113k a
  // per-message-allocating path produces on this fixture.
  EXPECT_LT(audit.total_allocations(), 60'000U);
}

TEST(AllocAuditRegion, CountsHeapTraffic) {
  if (!alloc_audit_enabled())
    GTEST_SKIP() << "allocation hooks compiled out (sanitizer build)";
  AllocAuditRegion region;
  {
    std::vector<std::uint64_t> v(1024);
    ASSERT_EQ(v.size(), 1024U);
  }
  const AllocCounts delta = region.delta();
  EXPECT_GE(delta.allocations, 1U);
  EXPECT_GE(delta.deallocations, 1U);
  EXPECT_GE(delta.bytes, 1024 * sizeof(std::uint64_t));
}

TEST(EngineAllocProfile, SerialDistMisReachesZeroAllocSteadyState) {
  if (!alloc_audit_enabled())
    GTEST_SKIP() << "allocation hooks compiled out (sanitizer build)";
  assert_steady_state_profile(paper_udg(1000), nullptr);
}

TEST(EngineAllocProfile, PooledDistMisReachesZeroAllocSteadyState) {
  if (!alloc_audit_enabled())
    GTEST_SKIP() << "allocation hooks compiled out (sanitizer build)";
  ThreadPool pool(2);
  assert_steady_state_profile(paper_udg(1000), &pool);
}

TEST(EngineAllocProfile, ShardedDistMisKeepsZeroAllocTailPerShardCount) {
  // Sharded *state* must preserve the allocation-free tail: per-shard send
  // lanes recycle slot capacity exactly like the inbox slabs, the lane
  // merge swap-moves payloads (never frees), and the SoA per-shard scratch
  // is pre-sized by prepare_shards. The audit does not force the serial
  // path, so these runs really exercise the lanes.
  if (!alloc_audit_enabled())
    GTEST_SKIP() << "allocation hooks compiled out (sanitizer build)";
  const Graph graph = paper_udg(1000);
  ThreadPool pool(2);
  for (const std::size_t shards : {2u, 8u})
    assert_steady_state_profile(graph, &pool, shards);
}

/// Runs asynchronous DistMIS-GBG with the per-event auditor attached and
/// asserts the steady-state allocation profile. With `reliable`, every node
/// is additionally hardened with the async ack/retransmit wrapper.
void assert_async_steady_state_profile(const Graph& graph, std::size_t shards,
                                       bool reliable) {
  AllocAudit audit;
  AsyncMetrics engine_metrics;
  AsyncDistMisOptions options;
  options.variant = DistMisVariant::kGbg;
  options.seed = 42;
  options.shards = shards;
  options.reliable = reliable;
  options.audit = &audit;
  options.engine_metrics = &engine_metrics;
  const ScheduleResult result = run_dist_mis_async(graph, options);

  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.num_slots, 0U);
  // One audited "round" per dispatched event (deliveries and timers both).
  ASSERT_EQ(audit.rounds(),
            engine_metrics.messages + engine_metrics.timer_events);
  ASSERT_GT(audit.rounds(), 10'000U)
      << "fixture too small to have a steady state";

  // The same core invariant as the synchronous gate, per event: allocator
  // traffic is warm-up (slab/lane/pool growth), never the steady state.
  // (1) The run ends with a real allocation-free tail. The absolute margin
  //     is generous: warm-up ends once every recycling structure has hit
  //     its high-water mark, long before the last few thousand events.
  //
  //     The reliable wrapper is exempt from this one assertion, on purpose:
  //     its allocations track *in-flight high-water records* — a slab slot
  //     or pool buffer spills the first time it has to hold a full-size
  //     frame, and retransmit races keep setting new instantaneous
  //     in-flight records (stochastically, ever more rarely) through the
  //     whole run. Each such record is one buffer joining the rotation at
  //     full size, never per-event traffic, so the rarity and total bounds
  //     below still hold with an order of magnitude to spare (~3% of
  //     events, measured) — but the *last* record can land arbitrarily
  //     close to the end.
  ASSERT_NE(audit.last_allocating_round(), AllocAudit::kNoRound);
  if (!reliable) {
    EXPECT_LE(audit.last_allocating_round() + 2'000, audit.rounds())
        << "no allocation-free tail — the steady-state event path allocates";
  }
  // (2) The overwhelming majority of events never allocate at all.
  EXPECT_LE(audit.allocating_rounds(), audit.rounds() / 10);
  // (3) Total traffic stays far below one allocation per event.
  EXPECT_LT(audit.total_allocations(), audit.rounds() / 4);
}

TEST(EngineAllocProfile, AsyncDistMisReachesZeroAllocSteadyState) {
  if (!alloc_audit_enabled())
    GTEST_SKIP() << "allocation hooks compiled out (sanitizer build)";
  assert_async_steady_state_profile(paper_udg(600), /*shards=*/0,
                                    /*reliable=*/false);
}

TEST(EngineAllocProfile, ShardedAsyncDistMisKeepsZeroAllocTail) {
  // Sharded event storage must preserve the tail: per-shard calendar
  // queues, cross-shard post lanes, and the tournament merge all recycle —
  // slab slots, lane capacity, and wheel buckets alike.
  if (!alloc_audit_enabled())
    GTEST_SKIP() << "allocation hooks compiled out (sanitizer build)";
  const Graph graph = paper_udg(600);
  for (const std::size_t shards : {2u, 8u})
    assert_async_steady_state_profile(graph, shards, /*reliable=*/false);
}

TEST(EngineAllocProfile, ReliableAsyncDistMisKeepsZeroAllocTail) {
  // The reliable wrapper adds framing, acks, and retransmit timers to every
  // hop; its frame pool and unframe scratch must keep the event path
  // allocation-free once the per-peer structures reach steady state.
  if (!alloc_audit_enabled())
    GTEST_SKIP() << "allocation hooks compiled out (sanitizer build)";
  assert_async_steady_state_profile(paper_udg(300), /*shards=*/0,
                                    /*reliable=*/true);
}

TEST(EngineAllocProfile, SerialAndPooledAgreeOnTheResult) {
  // Independent of the audit hooks: attaching an auditor must not change
  // the schedule, and the pooled engine stays byte-identical to serial.
  const Graph graph = paper_udg(300);
  DistMisOptions serial;
  serial.seed = 42;
  const ScheduleResult base = run_dist_mis(graph, serial);

  AllocAudit audit;
  ThreadPool pool(2);
  DistMisOptions audited;
  audited.seed = 42;
  audited.pool = &pool;
  audited.audit = &audit;
  const ScheduleResult pooled = run_dist_mis(graph, audited);

  EXPECT_EQ(base.rounds, pooled.rounds);
  EXPECT_EQ(base.messages, pooled.messages);
  EXPECT_EQ(base.num_slots, pooled.num_slots);
  EXPECT_EQ(audit.rounds(), pooled.rounds);
}

}  // namespace
}  // namespace fdlsp
