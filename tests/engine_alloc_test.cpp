// Machine-checks DESIGN.md §11's zero-alloc claim for the steady-state
// message path: a full DistMIS-GBG run on the paper-scale UDG fixture
// (n=1000, average degree ~6 — the headline BM_DistMisUdg row) must reach a
// state where rounds stop touching the allocator entirely, on the serial
// engine AND the sharded pooled engine.
//
// The assertions are margin-based rather than exact counts so that benign
// library-version drift in container growth policies does not break the
// gate, while a regression that reintroduces per-message allocator traffic
// (~250 allocations/round on this fixture, ~113k per run before the
// zero-alloc work) blows through every bound at once. Measured profile at
// the time of writing: ~30k total allocations, warm-up confined to the
// first ~430 of 451 rounds, and a 20+ round allocation-free tail.
//
// Under sanitizers the counting operator new hooks are compiled out
// (support/alloc_audit.h) and the whole suite skips.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "algos/dist_mis.h"
#include "graph/generators.h"
#include "support/alloc_audit.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace fdlsp {
namespace {

/// The BM_DistMisUdg fixture: n nodes on a square sized for average degree
/// ~6 at transmission radius 0.5.
Graph paper_udg(std::size_t n) {
  const double radius = 0.5;
  const double side =
      std::sqrt(static_cast<double>(n) * 3.14159265 * radius * radius / 6.0);
  Rng rng(42);
  return generate_udg(n, side, radius, rng).graph;
}

/// Runs DistMIS-GBG with the auditor attached and asserts the steady-state
/// allocation profile. `pool` may be null (serial engine); `shards` is the
/// explicit engine shard count (0 = pool-derived).
void assert_steady_state_profile(const Graph& graph, ThreadPool* pool,
                                 std::size_t shards = 0) {
  AllocAudit audit;
  std::vector<std::uint64_t> history;
  history.reserve(2048);
  audit.set_history(&history);

  DistMisOptions options;
  options.variant = DistMisVariant::kGbg;
  options.seed = 42;
  options.pool = pool;
  options.shards = shards;
  options.audit = &audit;
  const ScheduleResult result = run_dist_mis(graph, options);

  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.num_slots, 0U);
  // The auditor bracketed every engine round, and the history is its
  // per-round expansion.
  ASSERT_EQ(audit.rounds(), result.rounds);
  ASSERT_EQ(history.size(), result.rounds);
  EXPECT_EQ(std::accumulate(history.begin(), history.end(), std::uint64_t{0}),
            audit.total_allocations());
  ASSERT_GT(audit.rounds(), 100U) << "fixture too small to have a steady state";

  // The core invariant: allocator traffic is warm-up, not steady state.
  // (1) The run ends with a real allocation-free tail.
  ASSERT_NE(audit.last_allocating_round(), AllocAudit::kNoRound);
  EXPECT_LE(audit.last_allocating_round() + 20, audit.rounds())
      << "no allocation-free tail — the steady-state path allocates";
  // (2) Most rounds never allocate at all.
  EXPECT_LE(audit.allocating_rounds(), 2 * audit.rounds() / 3);
  // (3) Total traffic stays an order of magnitude under the ~113k a
  // per-message-allocating path produces on this fixture.
  EXPECT_LT(audit.total_allocations(), 60'000U);
}

TEST(AllocAuditRegion, CountsHeapTraffic) {
  if (!alloc_audit_enabled())
    GTEST_SKIP() << "allocation hooks compiled out (sanitizer build)";
  AllocAuditRegion region;
  {
    std::vector<std::uint64_t> v(1024);
    ASSERT_EQ(v.size(), 1024U);
  }
  const AllocCounts delta = region.delta();
  EXPECT_GE(delta.allocations, 1U);
  EXPECT_GE(delta.deallocations, 1U);
  EXPECT_GE(delta.bytes, 1024 * sizeof(std::uint64_t));
}

TEST(EngineAllocProfile, SerialDistMisReachesZeroAllocSteadyState) {
  if (!alloc_audit_enabled())
    GTEST_SKIP() << "allocation hooks compiled out (sanitizer build)";
  assert_steady_state_profile(paper_udg(1000), nullptr);
}

TEST(EngineAllocProfile, PooledDistMisReachesZeroAllocSteadyState) {
  if (!alloc_audit_enabled())
    GTEST_SKIP() << "allocation hooks compiled out (sanitizer build)";
  ThreadPool pool(2);
  assert_steady_state_profile(paper_udg(1000), &pool);
}

TEST(EngineAllocProfile, ShardedDistMisKeepsZeroAllocTailPerShardCount) {
  // Sharded *state* must preserve the allocation-free tail: per-shard send
  // lanes recycle slot capacity exactly like the inbox slabs, the lane
  // merge swap-moves payloads (never frees), and the SoA per-shard scratch
  // is pre-sized by prepare_shards. The audit does not force the serial
  // path, so these runs really exercise the lanes.
  if (!alloc_audit_enabled())
    GTEST_SKIP() << "allocation hooks compiled out (sanitizer build)";
  const Graph graph = paper_udg(1000);
  ThreadPool pool(2);
  for (const std::size_t shards : {2u, 8u})
    assert_steady_state_profile(graph, &pool, shards);
}

TEST(EngineAllocProfile, SerialAndPooledAgreeOnTheResult) {
  // Independent of the audit hooks: attaching an auditor must not change
  // the schedule, and the pooled engine stays byte-identical to serial.
  const Graph graph = paper_udg(300);
  DistMisOptions serial;
  serial.seed = 42;
  const ScheduleResult base = run_dist_mis(graph, serial);

  AllocAudit audit;
  ThreadPool pool(2);
  DistMisOptions audited;
  audited.seed = 42;
  audited.pool = &pool;
  audited.audit = &audit;
  const ScheduleResult pooled = run_dist_mis(graph, audited);

  EXPECT_EQ(base.rounds, pooled.rounds);
  EXPECT_EQ(base.messages, pooled.messages);
  EXPECT_EQ(base.num_slots, pooled.num_slots);
  EXPECT_EQ(audit.rounds(), pooled.rounds);
}

}  // namespace
}  // namespace fdlsp
