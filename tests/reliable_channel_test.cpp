// Ack/retransmit wrapper tests (sim/reliable.h): the hardened schedulers
// must restore the perfect-channel guarantee under every bounded-loss fault
// class, on both engines, while the same plans demonstrably break the
// unhardened runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "algos/dfs_schedule.h"
#include "algos/scheduler.h"
#include "coloring/checker.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "sim/fault.h"
#include "sim/reliable.h"
#include "support/rng.h"
#include "verify/fault_oracles.h"

namespace fdlsp {
namespace {

FaultSpec lossy_spec() {
  FaultSpec spec;
  spec.seed = 11;
  spec.drop_rate = 0.25;
  spec.duplicate_rate = 0.15;
  spec.corrupt_rate = 0.10;
  return spec;
}

TEST(ReliableChannelTest, RoundDilationGrowsWithLossBudget) {
  FaultSpec spec;
  const std::size_t base = ReliableSyncProgram::round_dilation(spec);
  EXPECT_GT(base, 1u);
  spec.max_losses_per_channel *= 4;
  EXPECT_GT(ReliableSyncProgram::round_dilation(spec), base);
  // A churn window extends the retransmission window further.
  spec.link_down_fraction = 0.5;
  spec.link_down_duration = 6.0;
  const std::size_t churned = ReliableSyncProgram::round_dilation(spec);
  EXPECT_GT(churned, ReliableSyncProgram::round_dilation(lossy_spec()));
}

class ReliableSyncSchedulers
    : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(ReliableSyncSchedulers, LossySpecStillYieldsFeasibleSchedule) {
  const SchedulerKind kind = GetParam();
  Rng rng(3);
  const std::vector<Graph> graphs = {
      generate_cycle(9), generate_star(8), generate_grid(3, 4),
      generate_gnm(14, 24, rng)};
  const FaultSpec spec = lossy_spec();
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const ScheduleResult result = run_scheduler_faulted(
        kind, graphs[i], /*seed=*/5, spec, /*reliable=*/true);
    EXPECT_TRUE(result.completed) << "graph " << i;
    EXPECT_GT(result.faults.dropped, 0u) << "graph " << i;
    const ArcView view(graphs[i]);
    EXPECT_TRUE(is_feasible_schedule(view, result.coloring)) << "graph " << i;
    const OracleVerdict verdict = check_fault_result(graphs[i], result);
    EXPECT_TRUE(verdict.ok) << verdict.failure;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReliableSyncSchedulers,
    ::testing::Values(SchedulerKind::kDistMisGbg,
                      SchedulerKind::kDistMisGeneral,
                      SchedulerKind::kRandomized),
    [](const auto& param_info) {
      std::string name = scheduler_name(param_info.param);
      for (char& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

TEST(ReliableChannelTest, AsyncWrapperRestoresDfsUnderLoss) {
  const std::vector<Graph> graphs = {generate_cycle(10), generate_star(9),
                                     generate_grid(3, 3)};
  const FaultSpec spec = lossy_spec();
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const ScheduleResult result = run_scheduler_faulted(
        SchedulerKind::kDfs, graphs[i], /*seed=*/5, spec, /*reliable=*/true);
    EXPECT_TRUE(result.completed) << "graph " << i;
    EXPECT_GT(result.faults.dropped, 0u) << "graph " << i;
    const ArcView view(graphs[i]);
    EXPECT_TRUE(is_feasible_schedule(view, result.coloring)) << "graph " << i;
  }
}

// The wrapper must actually be load-bearing: an unhardened DFS loses its
// token to the first dropped message and stalls.
TEST(ReliableChannelTest, UnwrappedDfsLosesItsTokenUnderDrops) {
  FaultSpec spec;
  spec.seed = 11;
  spec.drop_rate = 0.5;
  const Graph graph = generate_cycle(10);
  const ScheduleResult result = run_scheduler_faulted(
      SchedulerKind::kDfs, graph, /*seed=*/5, spec, /*reliable=*/false);
  const ArcView view(graph);
  EXPECT_FALSE(result.completed && is_feasible_schedule(view, result.coloring));
}

// Corruption is detected by the frame checksum and recovered by
// retransmission: a corrupt-only plan behaves like bounded loss.
TEST(ReliableChannelTest, CorruptionIsDetectedAndRetransmitted) {
  FaultSpec spec;
  spec.seed = 23;
  spec.corrupt_rate = 0.3;
  const Graph graph = generate_cycle(9);
  const ArcView view(graph);
  for (const SchedulerKind kind :
       {SchedulerKind::kDistMisGbg, SchedulerKind::kDfs}) {
    const ScheduleResult result = run_scheduler_faulted(
        kind, graph, /*seed=*/4, spec, /*reliable=*/true);
    EXPECT_TRUE(result.completed);
    EXPECT_GT(result.faults.corrupted, 0u);
    EXPECT_TRUE(is_feasible_schedule(view, result.coloring));
  }
}

// Duplicates alone must be absorbed by sequence-number dedup even without
// any loss to mask them.
TEST(ReliableChannelTest, DuplicatesAreDeduplicated) {
  FaultSpec spec;
  spec.seed = 29;
  spec.duplicate_rate = 0.5;
  const Graph graph = generate_grid(3, 3);
  const ArcView view(graph);
  for (const SchedulerKind kind :
       {SchedulerKind::kDistMisGbg, SchedulerKind::kDfs}) {
    const ScheduleResult result = run_scheduler_faulted(
        kind, graph, /*seed=*/4, spec, /*reliable=*/true);
    EXPECT_TRUE(result.completed);
    EXPECT_GT(result.faults.duplicated, 0u);
    EXPECT_TRUE(is_feasible_schedule(view, result.coloring));
  }
}

// Hardened faulted runs stay seed-deterministic: two identical runs agree
// arc for arc (the fault decisions are pure functions of the spec).
TEST(ReliableChannelTest, FaultedRunsAreDeterministic) {
  const Graph graph = generate_grid(4, 3);
  const FaultSpec spec = lossy_spec();
  for (const SchedulerKind kind :
       {SchedulerKind::kDistMisGbg, SchedulerKind::kDfs}) {
    const ScheduleResult first =
        run_scheduler_faulted(kind, graph, 5, spec, /*reliable=*/true);
    const ScheduleResult second =
        run_scheduler_faulted(kind, graph, 5, spec, /*reliable=*/true);
    ASSERT_EQ(first.coloring.num_arcs(), second.coloring.num_arcs());
    for (ArcId a = 0; a < first.coloring.num_arcs(); ++a)
      ASSERT_EQ(first.coloring.color(a), second.coloring.color(a));
    EXPECT_EQ(first.messages, second.messages);
    EXPECT_EQ(first.faults.dropped, second.faults.dropped);
  }
}

// Link churn: a finite down window is ridden out by retransmission on both
// engines (the dilation/give-up margins account for it).
TEST(ReliableChannelTest, LinkChurnIsRiddenOut) {
  FaultSpec spec;
  spec.seed = 31;
  spec.link_down_fraction = 0.4;
  spec.link_down_duration = 3.0;
  for (const SchedulerKind kind :
       {SchedulerKind::kDistMisGbg, SchedulerKind::kDfs}) {
    const Graph graph = generate_cycle(8);
    const ScheduleResult result =
        run_scheduler_faulted(kind, graph, 6, spec, /*reliable=*/true);
    EXPECT_TRUE(result.completed) << scheduler_name(kind);
    const OracleVerdict verdict = check_fault_result(graph, result, &spec);
    EXPECT_TRUE(verdict.ok) << scheduler_name(kind) << ": "
                            << verdict.failure;
  }
}

// Gilbert–Elliott bursts are ridden out like every other bounded class, on
// both engines, and the injection actually fires.
TEST(ReliableChannelTest, BurstLossIsRiddenOut) {
  FaultSpec spec;
  spec.seed = 37;
  spec.burst_rate = 0.3;
  spec.burst_recover = 0.2;
  spec.burst_loss = 1.0;
  for (const SchedulerKind kind :
       {SchedulerKind::kDistMisGbg, SchedulerKind::kDfs}) {
    const Graph graph = generate_grid(3, 3);
    const ScheduleResult result =
        run_scheduler_faulted(kind, graph, 6, spec, /*reliable=*/true);
    EXPECT_TRUE(result.completed) << scheduler_name(kind);
    EXPECT_GT(result.faults.burst_dropped, 0u) << scheduler_name(kind);
    const ArcView view(graph);
    EXPECT_TRUE(is_feasible_schedule(view, result.coloring))
        << scheduler_name(kind);
  }
}

// Under sustained loss the adaptive transport backs off: the recorded
// maximum retransmit spacing must exceed the base interval on both the
// round-paced (sync) and RTO-paced (async) wrappers.
TEST(AdaptiveTransportTest, BackoffGrowsUnderSustainedLoss) {
  FaultSpec spec;
  spec.seed = 41;
  spec.drop_rate = 0.5;
  spec.burst_rate = 0.5;
  spec.burst_recover = 0.1;
  spec.burst_loss = 1.0;
  for (const SchedulerKind kind :
       {SchedulerKind::kDistMisGbg, SchedulerKind::kDfs}) {
    const Graph graph = generate_cycle(8);
    const ScheduleResult result =
        run_scheduler_faulted(kind, graph, 7, spec, /*reliable=*/true);
    EXPECT_TRUE(result.completed) << scheduler_name(kind);
    EXPECT_GT(result.transport.retransmits, 0u) << scheduler_name(kind);
    // Base spacing is 2 (rounds on the sync wrapper, time units on the
    // async one); sustained failures must have pushed past it.
    EXPECT_GT(result.transport.max_backoff, 2.0) << scheduler_name(kind);
  }
}

// A peer that fail-stops with traffic pending exhausts the retransmit
// budget: the detector suspects it, the probe budget runs dry, and its
// frames are abandoned. Accuracy: every suspect actually crashed.
TEST(AdaptiveTransportTest, BudgetExhaustionRaisesSuspicion) {
  FaultSpec spec;
  spec.seed = 43;
  spec.crash_fraction = 0.2;
  spec.crash_horizon = 2.0;  // die early, while traffic is still flowing
  spec.max_losses_per_channel = 1;
  for (const SchedulerKind kind :
       {SchedulerKind::kDistMisGbg, SchedulerKind::kDfs}) {
    const Graph graph = generate_cycle(8);
    const ScheduleResult result =
        run_scheduler_faulted(kind, graph, 9, spec, /*reliable=*/true);
    // DistMIS survivors finish around the hole; DFS only degrades
    // gracefully (the token dies with the crashed node) — but on both, the
    // run terminates and the detector has convicted the dead peer.
    if (kind != SchedulerKind::kDfs) {
      EXPECT_TRUE(result.completed) << scheduler_name(kind);
    }
    EXPECT_FALSE(result.suspected.empty()) << scheduler_name(kind);
    EXPECT_GT(result.transport.suspicions, 0u) << scheduler_name(kind);
    EXPECT_GT(result.transport.abandoned, 0u) << scheduler_name(kind);
    // No churn/outage windows armed: suspicion must never hit a live peer.
    const FaultPlan plan(spec, graph);
    const std::vector<NodeId> crashed = plan.crashed_nodes();
    for (const NodeId v : result.suspected)
      EXPECT_TRUE(std::binary_search(crashed.begin(), crashed.end(), v))
          << scheduler_name(kind) << ": live node " << v << " suspected";
  }
}

// A long region outage looks like death until it lifts: the detector
// suspects stalled peers, keeps probing within its budget, and re-trusts
// them once the window closes — the run still completes.
TEST(AdaptiveTransportTest, RecoveryAfterOutageRetrusts) {
  FaultSpec spec;
  spec.seed = 47;
  spec.region_count = 1;
  spec.region_radius = 2.0;   // the disc covers every edge
  spec.region_horizon = 1.0;    // the window opens immediately...
  spec.region_duration = 60.0;  // ...and outlasts the suspicion threshold
                                // even at the async wrapper's maximum RTO
  spec.max_losses_per_channel = 1;
  for (const SchedulerKind kind :
       {SchedulerKind::kDistMisGbg, SchedulerKind::kDfs}) {
    const Graph graph = generate_cycle(6);
    const ScheduleResult result =
        run_scheduler_faulted(kind, graph, 8, spec, /*reliable=*/true);
    EXPECT_TRUE(result.completed) << scheduler_name(kind);
    EXPECT_GT(result.faults.region_drops, 0u) << scheduler_name(kind);
    EXPECT_GT(result.transport.suspicions, 0u) << scheduler_name(kind);
    EXPECT_GT(result.transport.retrusts, 0u) << scheduler_name(kind);
    // Nobody died: every suspicion was transient, nothing was abandoned.
    EXPECT_EQ(result.transport.abandoned, 0u) << scheduler_name(kind);
    const ArcView view(graph);
    EXPECT_TRUE(is_feasible_schedule(view, result.coloring))
        << scheduler_name(kind);
  }
}

// The legacy fixed-timer tuning stays available behind the tuning knob and
// still restores i.i.d. lossy runs (the bench harness compares the two).
TEST(AdaptiveTransportTest, FixedTuningStillRestoresLossyRuns) {
  const FaultSpec spec = lossy_spec();
  for (const SchedulerKind kind :
       {SchedulerKind::kDistMisGbg, SchedulerKind::kDfs}) {
    const Graph graph = generate_grid(3, 3);
    const ScheduleResult result = run_scheduler_faulted(
        kind, graph, 5, spec, /*reliable=*/true, TransportTuning::kFixed);
    EXPECT_TRUE(result.completed) << scheduler_name(kind);
    EXPECT_GT(result.faults.dropped, 0u) << scheduler_name(kind);
    const ArcView view(graph);
    EXPECT_TRUE(is_feasible_schedule(view, result.coloring))
        << scheduler_name(kind);
  }
}

}  // namespace
}  // namespace fdlsp
