// Tests for Bron–Kerbosch clique search.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/cliques.h"
#include "graph/generators.h"
#include "support/rng.h"

namespace fdlsp {
namespace {

TEST(MaxClique, KnownGraphs) {
  EXPECT_EQ(max_clique_size(generate_complete(6)), 6u);
  EXPECT_EQ(max_clique_size(generate_cycle(5)), 2u);
  EXPECT_EQ(max_clique_size(generate_complete_bipartite(3, 3)), 2u);
  EXPECT_EQ(max_clique_size(generate_path(4)), 2u);
  EXPECT_EQ(max_clique_size(Graph(3)), 1u);
  EXPECT_EQ(max_clique_size(Graph(0)), 0u);
}

TEST(MaxClique, TriangleWithPendant) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(0, 2);
  builder.add_edge(2, 3);
  EXPECT_EQ(max_clique_size(builder.build()), 3u);
}

TEST(MaxCliqueWithin, RestrictsToSubset) {
  const Graph complete = generate_complete(6);
  EXPECT_EQ(max_clique_size_within(complete, {0, 2, 4}), 3u);
  EXPECT_EQ(max_clique_size_within(complete, {1}), 1u);
  EXPECT_EQ(max_clique_size_within(complete, {}), 0u);
}

TEST(MaximalCliques, EnumeratesAll) {
  // Two triangles sharing an edge: 0-1-2 and 1-2-3.
  GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(0, 2);
  builder.add_edge(1, 2);
  builder.add_edge(1, 3);
  builder.add_edge(2, 3);
  auto cliques = maximal_cliques(builder.build());
  std::sort(cliques.begin(), cliques.end());
  ASSERT_EQ(cliques.size(), 2u);
  EXPECT_EQ(cliques[0], (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(cliques[1], (std::vector<NodeId>{1, 2, 3}));
}

TEST(MaximalCliques, CoverAllEdgesOnRandomGraphs) {
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph graph = generate_gnm(18, 40, rng);
    const auto cliques = maximal_cliques(graph);
    // Every edge must be inside some maximal clique; every clique is a clique.
    for (const auto& clique : cliques)
      for (std::size_t i = 0; i < clique.size(); ++i)
        for (std::size_t j = i + 1; j < clique.size(); ++j)
          EXPECT_TRUE(graph.has_edge(clique[i], clique[j]));
    for (const Edge& e : graph.edges()) {
      const bool covered = std::any_of(
          cliques.begin(), cliques.end(), [&](const auto& clique) {
            return std::binary_search(clique.begin(), clique.end(), e.u) &&
                   std::binary_search(clique.begin(), clique.end(), e.v);
          });
      EXPECT_TRUE(covered);
    }
    // Max clique size agrees with the enumeration.
    std::size_t best = 0;
    for (const auto& clique : cliques) best = std::max(best, clique.size());
    EXPECT_EQ(max_clique_size(graph), best);
  }
}

}  // namespace
}  // namespace fdlsp
