// Determinism regression: every algorithm run twice with the same seed must
// yield byte-identical colorings and identical cost metrics.
//
// This catches hidden dependence on std::unordered_* iteration order,
// address-based tie-breaking, uninitialized reads, or shared global RNG
// state — all of which can differ between runs (or builds) while still
// producing "feasible" schedules. The sweep covers every scheduler kind,
// every graph family, and every async delay model.
//
// The rerun sweep rides the sharded run_scenarios driver: scenarios fan
// out across a ThreadPool while failure reporting stays lowest-index-first.
#include <gtest/gtest.h>

#include "algos/scheduler.h"
#include "coloring/exact.h"
#include "coloring/greedy.h"
#include "exp/workloads.h"
#include "graph/arcs.h"
#include "support/thread_pool.h"
#include "verify/differential.h"
#include "verify/scenario.h"

namespace fdlsp {
namespace {

TEST(Determinism, AllSchedulersByteIdenticalAcrossReruns) {
  const std::vector<Scenario> scenarios = sample_scenarios(24, 0xdead5eed, 18);
  ThreadPool pool(4);
  for (const SchedulerKind kind :
       {SchedulerKind::kDistMisGbg, SchedulerKind::kDistMisGeneral,
        SchedulerKind::kDfs, SchedulerKind::kDmgc, SchedulerKind::kGreedy,
        SchedulerKind::kRandomized}) {
    const ScenarioCheckFn rerun = [kind](const Scenario& scenario,
                                         std::size_t) {
      ScenarioOutcome outcome;
      const Graph graph = materialize(scenario);
      const ScheduleResult first =
          run_scheduler_on_components(kind, graph, scenario.seed);
      const ScheduleResult second =
          run_scheduler_on_components(kind, graph, scenario.seed);
      ++outcome.checks;
      if (first.coloring.raw() != second.coloring.raw() ||
          first.num_slots != second.num_slots ||
          first.rounds != second.rounds ||
          first.messages != second.messages ||
          first.async_time != second.async_time)
        outcome.failures.push_back("rerun diverged: " +
                                   repro_command(scenario, kind));
      return outcome;
    };
    const ScenarioSweep sweep = run_scenarios(scenarios, rerun, &pool);
    EXPECT_EQ(sweep.scenarios, scenarios.size());
    EXPECT_EQ(sweep.checks, scenarios.size());
    EXPECT_TRUE(sweep.ok()) << sweep.failure_digest();
  }
}

TEST(Determinism, MaterializeIsPureFunctionOfScenario) {
  const std::vector<Scenario> scenarios = sample_scenarios(32, 0xfeed, 20);
  for (const Scenario& scenario : scenarios) {
    const Graph a = materialize(scenario);
    const Graph b = materialize(scenario);
    ASSERT_EQ(a.num_nodes(), b.num_nodes());
    ASSERT_EQ(std::vector<Edge>(a.edges().begin(), a.edges().end()),
              std::vector<Edge>(b.edges().begin(), b.edges().end()));
  }
}

TEST(Determinism, GreedyAndExactReferencesStable) {
  const std::vector<Scenario> scenarios = sample_scenarios(12, 0xbead, 12);
  for (const Scenario& scenario : scenarios) {
    const Graph graph = materialize(scenario);
    const ArcView view(graph);
    const ArcColoring g1 = greedy_coloring(view, GreedyOrder::kByDegreeDesc);
    const ArcColoring g2 = greedy_coloring(view, GreedyOrder::kByDegreeDesc);
    ASSERT_EQ(g1.raw(), g2.raw());
    const ExactFdlspResult e1 = optimal_fdlsp(view);
    const ExactFdlspResult e2 = optimal_fdlsp(view);
    ASSERT_EQ(e1.coloring.raw(), e2.coloring.raw());
    ASSERT_EQ(e1.num_colors, e2.num_colors);
  }
}

}  // namespace
}  // namespace fdlsp
