// Tests for the DistMIS distributed algorithm (both variants).
#include <gtest/gtest.h>

#include "algos/dist_mis.h"
#include "coloring/bounds.h"
#include "coloring/checker.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "support/rng.h"

namespace fdlsp {
namespace {

void expect_valid_schedule(const Graph& graph, const ScheduleResult& result) {
  const ArcView view(graph);
  EXPECT_TRUE(is_feasible_schedule(view, result.coloring));
  EXPECT_EQ(result.num_slots, result.coloring.num_colors_used());
  if (graph.num_edges() > 0) {
    EXPECT_GE(result.num_slots, lower_bound_trivial(graph));
    EXPECT_LE(result.num_slots, upper_bound_colors(graph));
  }
}

class DistMisVariantTest
    : public ::testing::TestWithParam<DistMisVariant> {};

TEST_P(DistMisVariantTest, SingleEdge) {
  const Graph graph = generate_path(2);
  DistMisOptions options{GetParam(), 1, 100000};
  const auto result = run_dist_mis(graph, options);
  expect_valid_schedule(graph, result);
  EXPECT_EQ(result.num_slots, 2u);
}

TEST_P(DistMisVariantTest, PathAndCycle) {
  for (const Graph& graph : {generate_path(9), generate_cycle(9)}) {
    DistMisOptions options{GetParam(), 2, 100000};
    const auto result = run_dist_mis(graph, options);
    expect_valid_schedule(graph, result);
  }
}

TEST_P(DistMisVariantTest, StarAndComplete) {
  for (const Graph& graph : {generate_star(8), generate_complete(6)}) {
    DistMisOptions options{GetParam(), 3, 100000};
    const auto result = run_dist_mis(graph, options);
    expect_valid_schedule(graph, result);
  }
}

TEST_P(DistMisVariantTest, DisconnectedGraphStillColors) {
  GraphBuilder builder(6);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(3, 4);  // node 5 isolated
  const Graph graph = builder.build();
  DistMisOptions options{GetParam(), 4, 100000};
  const auto result = run_dist_mis(graph, options);
  expect_valid_schedule(graph, result);
}

TEST_P(DistMisVariantTest, RandomGraphSweep) {
  Rng rng(101);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 8 + rng.next_index(30);
    const std::size_t m = rng.next_index(n * 2 + 1);
    const Graph graph = generate_gnm(n, m, rng);
    DistMisOptions options{GetParam(), rng(), 200000};
    const auto result = run_dist_mis(graph, options);
    expect_valid_schedule(graph, result);
  }
}

TEST_P(DistMisVariantTest, UdgSweep) {
  Rng rng(103);
  for (int trial = 0; trial < 4; ++trial) {
    const auto geo = generate_udg(60, 5.0, 0.6, rng);
    DistMisOptions options{GetParam(), rng(), 200000};
    const auto result = run_dist_mis(geo.graph, options);
    expect_valid_schedule(geo.graph, result);
  }
}

TEST_P(DistMisVariantTest, DeterministicUnderSeed) {
  Rng rng(107);
  const Graph graph = generate_gnm(20, 40, rng);
  DistMisOptions options{GetParam(), 99, 100000};
  const auto a = run_dist_mis(graph, options);
  const auto b = run_dist_mis(graph, options);
  EXPECT_EQ(a.num_slots, b.num_slots);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.coloring.raw(), b.coloring.raw());
}

TEST_P(DistMisVariantTest, RoundsScaleFarBelowQuadratic) {
  // Figures 13-15: rounds are far below n even on dense instances.
  Rng rng(109);
  const Graph graph = generate_gnm(120, 600, rng);
  DistMisOptions options{GetParam(), 5, 500000};
  const auto result = run_dist_mis(graph, options);
  expect_valid_schedule(graph, result);
  EXPECT_LT(result.rounds, 120u * 120u);
  EXPECT_GT(result.messages, 0u);
}

INSTANTIATE_TEST_SUITE_P(BothVariants, DistMisVariantTest,
                         ::testing::Values(DistMisVariant::kGbg,
                                           DistMisVariant::kGeneral),
                         [](const auto& param_info) {
                           return param_info.param == DistMisVariant::kGbg
                                      ? "Gbg"
                                      : "General";
                         });

TEST(DistMis, EdgelessGraphFinishesImmediately) {
  const Graph graph(4);
  DistMisOptions options;
  const auto result = run_dist_mis(graph, options);
  EXPECT_EQ(result.num_slots, 0u);
  EXPECT_EQ(result.coloring.num_arcs(), 0u);
}

}  // namespace
}  // namespace fdlsp
