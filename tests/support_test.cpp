// Tests for the support runtime: rng, stats, table, cli, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>

#include "support/check.h"
#include "support/cli.h"
#include "support/parallel_for.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"
#include "support/thread_pool.h"
#include "support/timer.h"

namespace fdlsp {
namespace {

TEST(Check, RequireThrowsContractError) {
  EXPECT_THROW(FDLSP_REQUIRE(false, "boom"), contract_error);
  EXPECT_NO_THROW(FDLSP_REQUIRE(true, "fine"));
}

TEST(Check, MessageIncludesContext) {
  try {
    FDLSP_REQUIRE(1 == 2, "custom detail");
    FAIL() << "expected throw";
  } catch (const contract_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("custom detail"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 4);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const auto x = rng.next_below(13);
    EXPECT_LT(x, 13u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5'000; ++i) {
    const auto x = rng.next_int(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = values;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, values);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(1);
  Rng child = parent.split();
  // Child diverges from parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (parent() == child()) ++equal;
  EXPECT_LT(equal, 4);
}

TEST(Summary, MeanAndExtremes) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(Summary, VarianceMatchesTextbook) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Summary, EmptyThrowsOnMean) {
  Summary s;
  EXPECT_THROW(s.mean(), contract_error);
}

TEST(Summary, MergeWithEmptySides) {
  Summary a, b;
  a.add(3.0);
  a.merge(b);  // empty right side: no-op
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  Summary c;
  c.merge(a);  // empty left side: copies
  EXPECT_EQ(c.count(), 1u);
  EXPECT_DOUBLE_EQ(c.mean(), 3.0);
}

TEST(Summary, MergeEqualsSequential) {
  Summary a, b, all;
  Rng rng(21);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.next_double() * 10;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(TextTable, AlignedRendering) {
  TextTable table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"long-name", "2"});
  std::ostringstream os;
  table.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("| name"), std::string::npos);
  EXPECT_NE(text.find("long-name"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), contract_error);
}

TEST(TextTable, CsvQuotesSpecialCells) {
  TextTable table({"a"});
  table.add_row({"x,y"});
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
}

TEST(FmtDouble, TrimsTrailingZeros) {
  EXPECT_EQ(fmt_double(2.50), "2.5");
  EXPECT_EQ(fmt_double(3.00), "3");
  EXPECT_EQ(fmt_double(1.26, 1), "1.3");
}

TEST(CliArgs, ParsesFlagsAndValues) {
  const char* argv[] = {"prog", "--n=42", "--verbose", "--rate=1.5"};
  CliArgs args(4, argv);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("quiet"));
  EXPECT_EQ(args.get_int("n", 0), 42);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 1.5);
  EXPECT_EQ(args.get_int("missing", 7), 7);
}

TEST(CliArgs, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(CliArgs(2, argv), contract_error);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

TEST(ParallelFor, CoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelForSeeded, DeterministicAcrossThreadCounts) {
  std::vector<std::uint64_t> once(64), twice(64);
  {
    ThreadPool pool(1);
    parallel_for_seeded(pool, once.size(), 99,
                        [&](std::size_t i, Rng& rng) { once[i] = rng(); });
  }
  {
    ThreadPool pool(8);
    parallel_for_seeded(pool, twice.size(), 99,
                        [&](std::size_t i, Rng& rng) { twice[i] = rng(); });
  }
  EXPECT_EQ(once, twice);
}

TEST(Timer, MeasuresNonNegativeTime) {
  Timer timer;
  EXPECT_GE(timer.seconds(), 0.0);
  timer.reset();
  EXPECT_GE(timer.millis(), 0.0);
}

}  // namespace
}  // namespace fdlsp
