// Tests for the Graph / GraphBuilder / ArcView substrate.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/arcs.h"
#include "graph/graph.h"
#include "support/check.h"

namespace fdlsp {
namespace {

Graph triangle_plus_tail() {
  // 0-1, 1-2, 2-0, 2-3
  GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(2, 0);
  builder.add_edge(2, 3);
  return builder.build();
}

TEST(Graph, EmptyGraph) {
  Graph graph(5);
  EXPECT_EQ(graph.num_nodes(), 5u);
  EXPECT_EQ(graph.num_edges(), 0u);
  EXPECT_EQ(graph.max_degree(), 0u);
  EXPECT_EQ(graph.degree(0), 0u);
  EXPECT_FALSE(graph.has_edge(0, 1));
}

TEST(Graph, DegreesAndAdjacency) {
  const Graph graph = triangle_plus_tail();
  EXPECT_EQ(graph.num_nodes(), 4u);
  EXPECT_EQ(graph.num_edges(), 4u);
  EXPECT_EQ(graph.degree(0), 2u);
  EXPECT_EQ(graph.degree(2), 3u);
  EXPECT_EQ(graph.degree(3), 1u);
  EXPECT_EQ(graph.max_degree(), 3u);
  EXPECT_DOUBLE_EQ(graph.average_degree(), 2.0);
}

TEST(Graph, NeighborsSortedWithEdgeIds) {
  const Graph graph = triangle_plus_tail();
  const auto adj = graph.neighbors(2);
  ASSERT_EQ(adj.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      adj.begin(), adj.end(),
      [](const NeighborEntry& a, const NeighborEntry& b) { return a.to < b.to; }));
  for (const NeighborEntry& entry : adj) {
    const Edge& e = graph.edge(entry.edge);
    EXPECT_TRUE(e.u == 2 || e.v == 2);
  }
}

TEST(Graph, HasEdgeAndFindEdge) {
  const Graph graph = triangle_plus_tail();
  EXPECT_TRUE(graph.has_edge(0, 1));
  EXPECT_TRUE(graph.has_edge(1, 0));
  EXPECT_FALSE(graph.has_edge(0, 3));
  const EdgeId e = graph.find_edge(2, 3);
  ASSERT_NE(e, kNoEdge);
  EXPECT_EQ(graph.edge(e).u, 2u);
  EXPECT_EQ(graph.edge(e).v, 3u);
  EXPECT_EQ(graph.find_edge(0, 3), kNoEdge);
}

TEST(Graph, EdgesStoredCanonically) {
  GraphBuilder builder(3);
  builder.add_edge(2, 0);
  const Graph graph = builder.build();
  EXPECT_EQ(graph.edge(0).u, 0u);
  EXPECT_EQ(graph.edge(0).v, 2u);
}

TEST(GraphBuilder, RejectsSelfLoop) {
  GraphBuilder builder(3);
  EXPECT_THROW(builder.add_edge(1, 1), contract_error);
}

TEST(GraphBuilder, RejectsDuplicateEdge) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1);
  EXPECT_THROW(builder.add_edge(1, 0), contract_error);
}

TEST(GraphBuilder, RejectsOutOfRangeEndpoint) {
  GraphBuilder builder(2);
  EXPECT_THROW(builder.add_edge(0, 2), contract_error);
}

TEST(ArcView, TailHeadReverse) {
  const Graph graph = triangle_plus_tail();
  const ArcView view(graph);
  EXPECT_EQ(view.num_arcs(), 8u);
  for (ArcId a = 0; a < view.num_arcs(); ++a) {
    const ArcId r = ArcView::reverse(a);
    EXPECT_NE(a, r);
    EXPECT_EQ(ArcView::reverse(r), a);
    EXPECT_EQ(view.tail(a), view.head(r));
    EXPECT_EQ(view.head(a), view.tail(r));
    EXPECT_EQ(ArcView::edge_of(a), ArcView::edge_of(r));
  }
}

TEST(ArcView, FindArcDirectional) {
  const Graph graph = triangle_plus_tail();
  const ArcView view(graph);
  const ArcId a = view.find_arc(2, 3);
  ASSERT_NE(a, kNoArc);
  EXPECT_EQ(view.tail(a), 2u);
  EXPECT_EQ(view.head(a), 3u);
  const ArcId b = view.find_arc(3, 2);
  EXPECT_EQ(b, ArcView::reverse(a));
  EXPECT_EQ(view.find_arc(0, 3), kNoArc);
}

TEST(ArcView, OutInIncidentArcs) {
  const Graph graph = triangle_plus_tail();
  const ArcView view(graph);
  const auto out = view.out_arcs(2);
  ASSERT_EQ(out.size(), 3u);
  for (ArcId a : out) EXPECT_EQ(view.tail(a), 2u);
  const auto in = view.in_arcs(2);
  ASSERT_EQ(in.size(), 3u);
  for (ArcId a : in) EXPECT_EQ(view.head(a), 2u);
  const auto incident = view.incident_arcs(2);
  EXPECT_EQ(incident.size(), 6u);
  for (ArcId a : incident)
    EXPECT_TRUE(view.tail(a) == 2u || view.head(a) == 2u);
}

TEST(ArcView, ArcIdsAreDenseAndConsistent) {
  const Graph graph = triangle_plus_tail();
  const ArcView view(graph);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge& edge = graph.edge(e);
    const ArcId forward = view.arc_from(e, edge.u);
    const ArcId backward = view.arc_from(e, edge.v);
    EXPECT_EQ(forward, static_cast<ArcId>(2 * e));
    EXPECT_EQ(backward, static_cast<ArcId>(2 * e + 1));
  }
}

}  // namespace
}  // namespace fdlsp
