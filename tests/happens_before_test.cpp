// Tests for the vector-clock happens-before checker (analysis/
// happens_before.h) and its integration as the causality oracle: benign
// runs of the real schedulers stay clean, a seeded-adversary async run with
// an injected cross-node peek is caught, and check_scenario shrinks a
// causality failure to a minimal witness.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "algos/dist_mis.h"
#include "algos/dfs_schedule.h"
#include "algos/randomized.h"
#include "algos/scheduler.h"
#include "analysis/happens_before.h"
#include "coloring/greedy.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "sim/async_engine.h"
#include "support/check.h"
#include "support/rng.h"
#include "verify/causality.h"
#include "verify/differential.h"
#include "verify/scenario.h"

namespace fdlsp {
namespace {

// ---------------------------------------------------------------------------
// Clock semantics, driven event by event.

TEST(HappensBefore, ReadWithoutDeliveryIsAViolation) {
  HappensBeforeChecker checker(2);
  checker.on_local_step(0);
  checker.on_state_read(1, 0);
  ASSERT_FALSE(checker.ok());
  ASSERT_EQ(checker.violations().size(), 1u);
  const auto& v = checker.violations()[0];
  EXPECT_EQ(v.reader, 1u);
  EXPECT_EQ(v.owner, 0u);
  EXPECT_EQ(v.reader_known, 0u);
  EXPECT_EQ(v.owner_steps, 1u);
  EXPECT_NE(checker.report().find("violating"), std::string::npos);
}

TEST(HappensBefore, DeliveredKnowledgeMakesTheReadBenign) {
  HappensBeforeChecker checker(2);
  checker.on_local_step(0);
  checker.on_send(0, 1);
  checker.on_deliver(0, 1);
  checker.on_state_read(1, 0);  // reader knows all 1 of owner's 1 step
  EXPECT_TRUE(checker.ok());
  EXPECT_EQ(checker.state_reads(), 1u);
}

TEST(HappensBefore, StaleKnowledgeAfterNewStepsViolatesAgain) {
  HappensBeforeChecker checker(2);
  checker.on_local_step(0);
  checker.on_send(0, 1);
  checker.on_deliver(0, 1);
  checker.on_local_step(0);  // owner moves on; nothing delivered since
  checker.on_state_read(1, 0);
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_EQ(checker.violations()[0].reader_known, 1u);
  EXPECT_EQ(checker.violations()[0].owner_steps, 2u);
}

TEST(HappensBefore, TransitiveDeliveryCarriesKnowledge) {
  // 0 -> 1 -> 2: node 2 learns of node 0's step through node 1's relay.
  HappensBeforeChecker checker(3);
  checker.on_local_step(0);
  checker.on_send(0, 1);
  checker.on_deliver(0, 1);
  checker.on_local_step(1);
  checker.on_send(1, 2);
  checker.on_deliver(1, 2);
  checker.on_state_read(2, 0);
  EXPECT_TRUE(checker.ok());
}

TEST(HappensBefore, ChannelsAreFifoPerDirectedPair) {
  HappensBeforeChecker checker(2);
  checker.on_local_step(0);
  checker.on_send(0, 1);  // snapshot with 1 step
  checker.on_local_step(0);
  checker.on_send(0, 1);  // snapshot with 2 steps
  checker.on_deliver(0, 1);
  checker.on_state_read(1, 0);  // only the first snapshot arrived
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_EQ(checker.violations()[0].reader_known, 1u);
  checker.on_deliver(0, 1);
  checker.on_state_read(1, 0);  // second snapshot: fully caught up
  EXPECT_EQ(checker.violations().size(), 1u);
}

TEST(HappensBefore, DeliveryWithoutMatchingSendIsRejected) {
  HappensBeforeChecker checker(2);
  EXPECT_THROW(checker.on_deliver(0, 1), contract_error);
}

TEST(HappensBefore, ResetReArmsTheChecker) {
  HappensBeforeChecker checker(2);
  checker.on_local_step(0);
  checker.on_state_read(1, 0);
  ASSERT_FALSE(checker.ok());
  checker.reset();
  EXPECT_TRUE(checker.ok());
  EXPECT_EQ(checker.events(), 0u);
  checker.on_local_step(0);
  checker.on_send(0, 1);
  checker.on_deliver(0, 1);
  checker.on_state_read(1, 0);
  EXPECT_TRUE(checker.ok());
}

// ---------------------------------------------------------------------------
// The real schedulers are clean under the checker.

TEST(HappensBefore, DistMisRunsClean) {
  Rng rng(3);
  const Graph graph = generate_gnm(12, 20, rng);
  HappensBeforeChecker checker(graph.num_nodes());
  DistMisOptions options;
  options.seed = 5;
  options.trace = &checker;
  run_dist_mis(graph, options);
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GT(checker.events(), 0u);
  EXPECT_EQ(checker.state_reads(), 0u);  // results read only after the run
}

TEST(HappensBefore, DfsRunsCleanUnderAdversarialDelays) {
  const Graph path = generate_path(8);
  HappensBeforeChecker checker(path.num_nodes());
  DfsOptions options;
  options.delay_model = DelayModel::kAdversarial;
  options.seed = 17;
  options.trace = &checker;
  run_dfs_schedule(path, options);
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GT(checker.events(), 0u);
}

TEST(HappensBefore, CheckCausalityPassesForAllBuiltInSchedulers) {
  Rng rng(9);
  const Graph graph = generate_gnm(10, 14, rng);
  for (const SchedulerKind kind :
       {SchedulerKind::kDistMisGbg, SchedulerKind::kDistMisGeneral,
        SchedulerKind::kDfs, SchedulerKind::kDmgc, SchedulerKind::kGreedy,
        SchedulerKind::kRandomized}) {
    const OracleVerdict verdict = check_causality(kind, graph, 23);
    EXPECT_TRUE(verdict.ok)
        << scheduler_name(kind) << ": " << verdict.failure;
  }
}

TEST(HappensBefore, ProbesExistExactlyForEngineBackedSchedulers) {
  EXPECT_TRUE(static_cast<bool>(
      causality_probe_for(SchedulerKind::kDistMisGbg)));
  EXPECT_TRUE(static_cast<bool>(causality_probe_for(SchedulerKind::kDfs)));
  EXPECT_FALSE(static_cast<bool>(causality_probe_for(SchedulerKind::kDmgc)));
  EXPECT_FALSE(
      static_cast<bool>(causality_probe_for(SchedulerKind::kGreedy)));
}

// ---------------------------------------------------------------------------
// Injected violation: a program that peeks peer state through the engine.

/// Node 0 broadcasts a ping; every receiver then reads the program objects
/// of all nodes other than itself and the sender — a direct shared-memory
/// peek past the message API.
class PeekProgram final : public AsyncProgram {
 public:
  PeekProgram(NodeId self, std::size_t n) : self_(self), n_(n) {}

  void set_engine(AsyncEngine* engine) { engine_ = engine; }

  void on_start(AsyncContext& ctx) override {
    if (self_ == 0) {
      Message ping;
      ping.tag = 99;
      ctx.broadcast(std::move(ping));
    }
  }

  void on_message(AsyncContext&, Message& message) override {
    for (NodeId w = 0; w < n_; ++w) {
      if (w == self_ || w == message.from) continue;
      (void)engine_->program(w);  // the injected causality violation
    }
  }

  bool finished() const override { return true; }

 private:
  NodeId self_;
  std::size_t n_;
  AsyncEngine* engine_ = nullptr;
};

/// Builds a PeekProgram engine over `graph` with the checker attached.
std::unique_ptr<AsyncEngine> make_peek_engine(const Graph& graph,
                                              std::uint64_t seed) {
  std::vector<std::unique_ptr<AsyncProgram>> programs;
  std::vector<PeekProgram*> raw;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    auto program = std::make_unique<PeekProgram>(v, graph.num_nodes());
    raw.push_back(program.get());
    programs.push_back(std::move(program));
  }
  auto engine = std::make_unique<AsyncEngine>(
      graph, std::move(programs), DelayModel::kAdversarial, seed);
  for (PeekProgram* program : raw) program->set_engine(engine.get());
  return engine;
}

TEST(HappensBefore, SeededAdversaryCatchesInjectedPeek) {
  const Graph path = generate_path(4);
  HappensBeforeChecker checker(path.num_nodes());
  auto engine = make_peek_engine(path, 41);
  engine->set_trace(&checker);
  engine->run();
  ASSERT_FALSE(checker.ok());
  const auto& v = checker.violations().front();
  EXPECT_LT(v.reader_known, v.owner_steps);
  EXPECT_NE(v.reader, v.owner);
  EXPECT_NE(checker.report().find("violating"), std::string::npos);
  EXPECT_NE(to_string(v).find("read node"), std::string::npos);
}

TEST(HappensBefore, PostRunDriverAccessIsNotReported) {
  const Graph path = generate_path(4);
  HappensBeforeChecker checker(path.num_nodes());
  auto engine = make_peek_engine(path, 41);
  engine->set_trace(&checker);
  engine->run();
  const std::uint64_t reads_during_run = checker.state_reads();
  // Harvesting results after the run is the sanctioned access pattern.
  for (NodeId v = 0; v < path.num_nodes(); ++v) (void)engine->program(v);
  EXPECT_EQ(checker.state_reads(), reads_during_run);
}

// ---------------------------------------------------------------------------
// Oracle-battery integration: the causality probe composes with shrinking.

TEST(HappensBefore, CausalityFailureShrinksToMinimalWitness) {
  // The schedule itself is a clean centralized greedy (all other oracles
  // pass); the probe runs the peeking protocol, so causality is the only
  // failing oracle and the shrinker must preserve exactly its witness.
  const ScheduleFn clean_greedy = [](const Graph& g, std::uint64_t) {
    ScheduleResult result;
    result.coloring = greedy_coloring(ArcView(g), GreedyOrder::kByDegreeDesc);
    result.num_slots = result.coloring.num_colors_used();
    return result;
  };
  DifferentialOptions options;
  options.oracles.causality_probe = [](const Graph& g, std::uint64_t seed) {
    HappensBeforeChecker checker(g.num_nodes());
    auto engine = make_peek_engine(g, seed);
    engine->set_trace(&checker);
    engine->run();
    OracleVerdict verdict;
    if (!checker.ok()) {
      verdict.ok = false;
      verdict.failure = "causality: " + checker.report();
    }
    return verdict;
  };

  const Scenario scenario = scenario_from_graph(generate_path(6));
  const auto failure =
      check_scenario(clean_greedy, "peeky", scenario, options);
  ASSERT_TRUE(failure.has_value());
  EXPECT_NE(failure->oracle_failure.find("causality"), std::string::npos);
  EXPECT_NE(failure->shrunk_failure.find("causality"), std::string::npos);
  // The minimal witness: an initiator with one neighbor to ping plus one
  // third node whose un-delivered start step the receiver peeks. Dropping
  // any vertex or the edge kills the violation.
  EXPECT_EQ(failure->shrunk.num_nodes(), 3u);
  EXPECT_EQ(failure->shrunk.num_edges(), 1u);
}

}  // namespace
}  // namespace fdlsp
