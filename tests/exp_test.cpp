// Tests for the experiment harness: workloads, component-aware scheduling,
// parallel point runner and report rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "coloring/checker.h"
#include "exp/report.h"
#include "exp/runner.h"
#include "exp/workloads.h"
#include "graph/algorithms.h"
#include "graph/arcs.h"

namespace fdlsp {
namespace {

TEST(Workloads, UdgSeriesMatchesPaper) {
  const auto series = udg_series(15.0);
  ASSERT_EQ(series.size(), 4u);
  EXPECT_EQ(series[0].nodes, 50u);
  EXPECT_EQ(series[3].nodes, 300u);
  for (const UdgPoint& point : series) {
    EXPECT_DOUBLE_EQ(point.side, 15.0 * kUdgUnitLength);
    EXPECT_DOUBLE_EQ(point.radius, 0.5);
  }
}

TEST(Workloads, GeneralSeriesSweepsDegrees) {
  const auto series = general_series(200);
  ASSERT_EQ(series.size(), 4u);
  EXPECT_EQ(series[0].edges, 400u);   // avg degree 4
  EXPECT_EQ(series[3].edges, 3200u);  // avg degree 32
  for (const GeneralPoint& point : series) EXPECT_EQ(point.nodes, 200u);
}

TEST(ComponentScheduling, DfsHandlesDisconnectedGraphs) {
  GraphBuilder builder(7);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(3, 4);
  builder.add_edge(4, 5);  // node 6 isolated
  const Graph graph = builder.build();
  const ScheduleResult result =
      run_scheduler_on_components(SchedulerKind::kDfs, graph, 5);
  EXPECT_TRUE(is_feasible_schedule(ArcView(graph), result.coloring));
  // Components share slots: two identical paths need only one path's worth.
  EXPECT_EQ(result.num_slots, 4u);
}

TEST(ComponentScheduling, ConnectedGraphPassesThrough) {
  const Graph path = generate_path(5);
  const auto direct = run_scheduler(SchedulerKind::kDfs, path, 5);
  const auto component = run_scheduler_on_components(SchedulerKind::kDfs,
                                                     path, 5);
  EXPECT_EQ(direct.num_slots, component.num_slots);
}

TEST(Runner, UdgPointAggregatesAllAlgorithms) {
  ThreadPool pool(2);
  RunConfig config;
  config.kinds = {SchedulerKind::kGreedy, SchedulerKind::kDmgc};
  config.instances = 4;
  config.seed = 9;
  const PointResult point =
      run_udg_point(UdgPoint{30, 4.0, 0.5}, config, pool);
  EXPECT_EQ(point.label, "n=30");
  EXPECT_EQ(point.avg_degree.count(), 4u);
  EXPECT_EQ(point.lower_bound.count(), 4u);
  ASSERT_EQ(point.algorithms.size(), 2u);
  for (const auto& [kind, agg] : point.algorithms) {
    EXPECT_EQ(agg.slots.count(), 4u);
    EXPECT_GE(agg.slots.mean(), point.lower_bound.mean());
    EXPECT_LE(agg.slots.mean(), point.upper_bound.mean());
  }
}

TEST(Runner, DeterministicAcrossThreadCounts) {
  RunConfig config;
  config.kinds = {SchedulerKind::kGreedy};
  config.instances = 6;
  config.seed = 11;
  ThreadPool one(1), many(4);
  const PointResult a = run_general_point(GeneralPoint{40, 80}, config, one);
  const PointResult b = run_general_point(GeneralPoint{40, 80}, config, many);
  EXPECT_DOUBLE_EQ(a.avg_degree.mean(),
                   b.avg_degree.mean());
  EXPECT_DOUBLE_EQ(a.algorithms.at(SchedulerKind::kGreedy).slots.mean(),
                   b.algorithms.at(SchedulerKind::kGreedy).slots.mean());
}

TEST(Report, SlotsTableShape) {
  ThreadPool pool(2);
  RunConfig config;
  config.kinds = {SchedulerKind::kGreedy};
  config.instances = 2;
  std::vector<PointResult> points{
      run_general_point(GeneralPoint{20, 40}, config, pool)};
  const TextTable table = slots_table(points, config.kinds);
  EXPECT_EQ(table.rows(), 1u);
  EXPECT_EQ(table.columns(), 5u);  // point, degree, greedy, lb, ub
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("m=40"), std::string::npos);
}

TEST(Report, RoundsTableShape) {
  ThreadPool pool(2);
  RunConfig config;
  config.kinds = {SchedulerKind::kDistMisGeneral};
  config.instances = 2;
  std::vector<PointResult> points{
      run_general_point(GeneralPoint{20, 40}, config, pool)};
  const TextTable table =
      rounds_table(points, SchedulerKind::kDistMisGeneral);
  EXPECT_EQ(table.rows(), 1u);
  EXPECT_EQ(table.columns(), 4u);
  std::ostringstream os;
  print_report(os, "demo", table);
  EXPECT_NE(os.str().find("== demo =="), std::string::npos);
}

}  // namespace
}  // namespace fdlsp
