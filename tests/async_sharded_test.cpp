// Sharded-async determinism property suite.
//
// The sharded AsyncEngine's contract is byte-identity: for every shard
// count, delivery order — and therefore every metric, schedule, and fault
// stream — matches the serial engine exactly, because the global sequence
// counter is assigned at post time and the tournament over shard heads pops
// in `(time, sequence)` order, the same total order the serial calendar
// queue uses. This suite pins that contract where it matters: across all
// six scenario families × all three delay models × shard counts {2, 4, 8},
// plus a correlated fault plan behind the reliable wrapper (where the fault
// seam forces the serial path — attaching faults must never change results
// no matter what shard count was requested).
//
// Equality is asserted on everything run_dist_mis_async reports: the
// schedule (raw slot assignment), the synchronous-projection metrics, and
// the engine's own AsyncMetrics including fifo_ok, completion_time (exact
// double equality — same event order means same arithmetic), and the fault
// counters. The suite rides the TSan preset like every proptest.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>

#include "algos/dist_mis.h"
#include "sim/async_engine.h"
#include "sim/delay.h"
#include "sim/fault.h"
#include "verify/scenario.h"

namespace fdlsp {
namespace {

constexpr std::size_t kShardCounts[] = {2, 4, 8};
constexpr DelayModel kDelayModels[] = {
    DelayModel::kUnit, DelayModel::kUniformRandom, DelayModel::kAdversarial};

struct AsyncRun {
  ScheduleResult result;
  AsyncMetrics metrics;
};

AsyncRun run_async(const Graph& graph, DelayModel model, std::size_t shards,
                   const FaultSpec* faults, bool reliable) {
  AsyncRun run;
  AsyncDistMisOptions options;
  options.variant = DistMisVariant::kGbg;
  options.seed = 42;
  options.delay_model = model;
  options.delay_seed = 7;
  options.shards = shards;
  options.faults = faults;
  options.reliable = reliable;
  options.engine_metrics = &run.metrics;
  run.result = run_dist_mis_async(graph, options);
  return run;
}

/// Asserts the full byte-equality contract between a serial run and a
/// sharded run of the same scenario.
void expect_identical(const AsyncRun& serial, const AsyncRun& sharded,
                      const std::string& label) {
  // Schedule: identical slot assignment, not merely feasible.
  EXPECT_EQ(serial.result.coloring.raw(), sharded.result.coloring.raw())
      << label;
  EXPECT_EQ(serial.result.num_slots, sharded.result.num_slots) << label;
  // Synchronous-projection metrics.
  EXPECT_EQ(serial.result.rounds, sharded.result.rounds) << label;
  EXPECT_EQ(serial.result.messages, sharded.result.messages) << label;
  EXPECT_EQ(serial.result.completed, sharded.result.completed) << label;
  // Engine metrics: same event order means the same arithmetic, so even
  // the floating-point completion time must agree to the last bit.
  EXPECT_EQ(serial.metrics.messages, sharded.metrics.messages) << label;
  EXPECT_EQ(serial.metrics.timer_events, sharded.metrics.timer_events)
      << label;
  EXPECT_EQ(serial.metrics.completion_time, sharded.metrics.completion_time)
      << label;
  EXPECT_EQ(serial.metrics.completed, sharded.metrics.completed) << label;
  EXPECT_EQ(serial.metrics.fifo_ok, sharded.metrics.fifo_ok) << label;
  EXPECT_EQ(serial.metrics.stall_diagnosis, sharded.metrics.stall_diagnosis)
      << label;
  // Fault streams consume per-channel randomness in delivery order, so the
  // counters are sensitive to any ordering divergence.
  EXPECT_EQ(serial.metrics.faults.dropped, sharded.metrics.faults.dropped)
      << label;
  EXPECT_EQ(serial.metrics.faults.duplicated,
            sharded.metrics.faults.duplicated)
      << label;
  EXPECT_EQ(serial.metrics.faults.corrupted, sharded.metrics.faults.corrupted)
      << label;
  EXPECT_EQ(serial.metrics.faults.burst_dropped,
            sharded.metrics.faults.burst_dropped)
      << label;
  EXPECT_EQ(serial.metrics.faults.region_drops,
            sharded.metrics.faults.region_drops)
      << label;
  EXPECT_EQ(serial.metrics.faults.link_down_drops,
            sharded.metrics.faults.link_down_drops)
      << label;
}

Scenario family_scenario(GraphFamily family) {
  Scenario scenario;
  scenario.family = family;
  scenario.n = 16;
  scenario.density = 0.5;
  scenario.seed = 0xa5c0 + static_cast<std::uint64_t>(family);
  return scenario;
}

TEST(AsyncSharded, SerialEqualsShardedAcrossFamiliesAndDelayModels) {
  for (const GraphFamily family : kAllFamilies) {
    const Graph graph = materialize(family_scenario(family));
    for (const DelayModel model : kDelayModels) {
      const AsyncRun serial =
          run_async(graph, model, /*shards=*/0, nullptr, /*reliable=*/false);
      ASSERT_TRUE(serial.metrics.completed)
          << family_name(family) << "/" << delay_model_name(model);
      ASSERT_TRUE(serial.metrics.fifo_ok);
      for (const std::size_t shards : kShardCounts) {
        const AsyncRun sharded =
            run_async(graph, model, shards, nullptr, /*reliable=*/false);
        expect_identical(serial, sharded,
                         family_name(family) + "/" +
                             delay_model_name(model) + "/shards=" +
                             std::to_string(shards));
      }
    }
  }
}

TEST(AsyncSharded, SerialEqualsShardedUnderReliableWrapper) {
  // The reliable wrapper multiplies event volume (frames, acks, retransmit
  // timers) and exercises the timer wheel heavily; shard counts must still
  // be invisible.
  for (const GraphFamily family : kAllFamilies) {
    const Graph graph = materialize(family_scenario(family));
    const AsyncRun serial = run_async(graph, DelayModel::kUniformRandom,
                                      /*shards=*/0, nullptr,
                                      /*reliable=*/true);
    ASSERT_TRUE(serial.metrics.completed) << family_name(family);
    for (const std::size_t shards : kShardCounts) {
      const AsyncRun sharded = run_async(graph, DelayModel::kUniformRandom,
                                         shards, nullptr, /*reliable=*/true);
      expect_identical(serial, sharded,
                       family_name(family) + "/reliable/shards=" +
                           std::to_string(shards));
    }
  }
}

TEST(AsyncSharded, SerialEqualsShardedUnderCorrelatedFaults) {
  // A correlated fault plan — Gilbert–Elliott burst loss plus hashed region
  // outages plus link-down windows — attached to the engine forces the
  // serial path (the fault stream consumes per-channel randomness in global
  // delivery order), so any requested shard count must reproduce the serial
  // run bit for bit, fault counters included. Lossy plans require the
  // reliable wrapper on the synchronizer path.
  FaultSpec spec;
  spec.seed = 9;
  spec.burst_rate = 0.15;
  spec.burst_recover = 0.5;
  spec.region_count = 1;
  spec.link_down_fraction = 0.2;
  for (const GraphFamily family : kAllFamilies) {
    const Graph graph = materialize(family_scenario(family));
    for (const DelayModel model : kDelayModels) {
      const AsyncRun serial =
          run_async(graph, model, /*shards=*/0, &spec, /*reliable=*/true);
      ASSERT_TRUE(serial.metrics.completed)
          << family_name(family) << "/" << delay_model_name(model);
      ASSERT_TRUE(serial.metrics.fifo_ok);
      EXPECT_GT(serial.metrics.faults.burst_dropped +
                    serial.metrics.faults.region_drops +
                    serial.metrics.faults.link_down_drops,
                0u)
          << "fault plan never fired — the scenario does not test recovery";
      for (const std::size_t shards : kShardCounts) {
        const AsyncRun sharded =
            run_async(graph, model, shards, &spec, /*reliable=*/true);
        expect_identical(serial, sharded,
                         family_name(family) + "/" +
                             delay_model_name(model) + "/faulted/shards=" +
                             std::to_string(shards));
      }
    }
  }
}

}  // namespace
}  // namespace fdlsp
