// Property-based differential fuzzing of every scheduler.
//
// ≥200 random scenarios per scheduler across the UDG / G(n,m) / tree / grid
// families, each run through the full oracle battery (feasibility, Theorem 1
// lower bound, 2Δ² upper bound, Δ-approximation vs the exact colorer on
// small instances, determinism). Any failure prints the one-line repro
// command plus the shrunk minimal witness produced by fdlsp_verify.
//
// The batches fan out across a shared ThreadPool via the sharded sweep
// driver (verify/differential.h), which guarantees serial-identical counts
// and failure ordering for any thread count.
#include <gtest/gtest.h>

#include "algos/scheduler.h"
#include "support/thread_pool.h"
#include "verify/differential.h"
#include "verify/scenario.h"

namespace fdlsp {
namespace {

constexpr std::size_t kScenariosPerScheduler = 200;
constexpr std::size_t kMaxNodes = 16;  // keeps 1200 runs inside seconds

/// One pool for the whole suite; workers idle between tests.
ThreadPool& sweep_pool() {
  static ThreadPool pool(4);
  return pool;
}

class ProptestSchedulers : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(ProptestSchedulers, AllOraclesOnRandomScenarios) {
  const SchedulerKind kind = GetParam();
  // Distinct scenario stream per scheduler so suites do not share blind
  // spots; the base seed is fixed so every run is reproducible.
  const std::uint64_t base_seed =
      0xf02ddbULL * (static_cast<std::uint64_t>(kind) + 1) + 17;
  const std::vector<Scenario> scenarios =
      sample_scenarios(kScenariosPerScheduler, base_seed, kMaxNodes);

  const FuzzSummary summary = fuzz_scheduler(kind, scenarios, &sweep_pool());
  EXPECT_EQ(summary.scenarios, kScenariosPerScheduler);
  for (const FailureReport& failure : summary.failures)
    ADD_FAILURE() << to_string(failure);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProptestSchedulers,
    ::testing::Values(SchedulerKind::kDistMisGbg,
                      SchedulerKind::kDistMisGeneral, SchedulerKind::kDfs,
                      SchedulerKind::kDmgc, SchedulerKind::kGreedy,
                      SchedulerKind::kRandomized),
    [](const auto& param_info) {
      std::string name = scheduler_name(param_info.param);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// The acceptance-criterion oracle called out in ISSUE 1: on every sampled
// instance where the exact colorer terminates, DistMIS and DFS stay within
// the claimed Δ-approximation. (The generic sweep above checks this too;
// this test pins the claim by itself so a future oracle-gating change
// cannot silently drop it.)
TEST(ProptestSchedulers, DeltaApproximationHoldsForProposedAlgorithms) {
  const std::vector<Scenario> scenarios = sample_scenarios(120, 0xa11ce, 14);
  for (const SchedulerKind kind :
       {SchedulerKind::kDistMisGbg, SchedulerKind::kDistMisGeneral,
        SchedulerKind::kDfs}) {
    const FuzzSummary summary = fuzz_scheduler(kind, scenarios,
                                               &sweep_pool());
    for (const FailureReport& failure : summary.failures)
      ADD_FAILURE() << to_string(failure);
  }
}

}  // namespace
}  // namespace fdlsp
