// Tests for the asynchronous DFS scheduling algorithm.
#include <gtest/gtest.h>

#include "algos/dfs_schedule.h"
#include "coloring/bounds.h"
#include "coloring/checker.h"
#include "graph/algorithms.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "support/rng.h"

namespace fdlsp {
namespace {

void expect_valid_schedule(const Graph& graph, const ScheduleResult& result) {
  const ArcView view(graph);
  EXPECT_TRUE(is_feasible_schedule(view, result.coloring));
  EXPECT_EQ(result.num_slots, result.coloring.num_colors_used());
  if (graph.num_edges() > 0) {
    EXPECT_GE(result.num_slots, lower_bound_trivial(graph));
    EXPECT_LE(result.num_slots, upper_bound_colors(graph));
  }
}

TEST(DfsSchedule, SingleEdge) {
  const Graph graph = generate_path(2);
  const auto result = run_dfs_schedule(graph);
  expect_valid_schedule(graph, result);
  EXPECT_EQ(result.num_slots, 2u);
}

TEST(DfsSchedule, TreesUseTwoDelta) {
  // Section 8: "Both the ILP and the DFS algorithm assign 2Δ colors for
  // input tree graphs."
  Rng rng(201);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph tree = generate_random_tree(2 + rng.next_index(40), rng);
    const auto result = run_dfs_schedule(tree);
    expect_valid_schedule(tree, result);
    EXPECT_EQ(result.num_slots, 2 * tree.max_degree());
  }
}

TEST(DfsSchedule, CompleteGraphsMatchIlp) {
  // Table 1: DFS matches the ILP on K4 (12) and K5 (20).
  EXPECT_EQ(run_dfs_schedule(generate_complete(4)).num_slots, 12u);
  EXPECT_EQ(run_dfs_schedule(generate_complete(5)).num_slots, 20u);
}

TEST(DfsSchedule, CompleteBipartiteMatchesTable1Pattern) {
  // Table 1's DFS column: suboptimal on complete bipartite graphs
  // (paper: K_{3,3} -> 10 vs optimum 9; K_{4,4} -> 18 vs true optimum 16,
  // where our deterministic traversal happens to reach 16).
  EXPECT_EQ(run_dfs_schedule(generate_complete_bipartite(2, 2)).num_slots,
            4u);
  EXPECT_EQ(run_dfs_schedule(generate_complete_bipartite(3, 3)).num_slots,
            10u);
  EXPECT_EQ(run_dfs_schedule(generate_complete_bipartite(4, 4)).num_slots,
            16u);
}

TEST(DfsSchedule, CyclesAndGrids) {
  for (const Graph& graph :
       {generate_cycle(8), generate_cycle(9), generate_grid(4, 5)}) {
    const auto result = run_dfs_schedule(graph);
    expect_valid_schedule(graph, result);
  }
}

TEST(DfsSchedule, RandomConnectedGraphSweep) {
  Rng rng(203);
  int done = 0;
  while (done < 10) {
    const std::size_t n = 8 + rng.next_index(30);
    const Graph graph = generate_gnm(n, n + rng.next_index(2 * n), rng);
    if (!is_connected(graph)) continue;
    ++done;
    DfsOptions options;
    options.seed = rng();
    const auto result = run_dfs_schedule(graph, options);
    expect_valid_schedule(graph, result);
  }
}

TEST(DfsSchedule, RandomDelaysProduceSameQualityClass) {
  Rng rng(207);
  Graph graph = generate_gnm(20, 50, rng);
  while (!is_connected(graph)) graph = generate_gnm(20, 50, rng);
  DfsOptions unit;
  unit.delay_model = DelayModel::kUnit;
  DfsOptions random_delay;
  random_delay.delay_model = DelayModel::kUniformRandom;
  random_delay.seed = 31;
  const auto a = run_dfs_schedule(graph, unit);
  const auto b = run_dfs_schedule(graph, random_delay);
  expect_valid_schedule(graph, a);
  expect_valid_schedule(graph, b);
  // Same deterministic traversal, so identical slot count (the token path
  // depends on degrees and ids only).
  EXPECT_EQ(a.num_slots, b.num_slots);
}

TEST(DfsSchedule, CompletionTimeLinearInN) {
  // O(n) communication rounds: with unit delays the completion time is a
  // small constant times n.
  Rng rng(211);
  Graph graph = generate_gnm(60, 150, rng);
  while (!is_connected(graph)) graph = generate_gnm(60, 150, rng);
  const auto result = run_dfs_schedule(graph);
  EXPECT_GT(result.async_time, 0.0);
  EXPECT_LT(result.async_time, 20.0 * 60);
}

TEST(DfsSchedule, ExplicitRootHonored) {
  const Graph path = generate_path(5);
  DfsOptions options;
  options.root = 4;
  const auto result = run_dfs_schedule(path, options);
  expect_valid_schedule(path, result);
}

TEST(DfsSchedule, RejectsDisconnectedGraphs) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(2, 3);
  EXPECT_THROW(run_dfs_schedule(builder.build()), contract_error);
}

TEST(DfsSchedule, SingleNodeGraph) {
  const Graph graph(1);
  const auto result = run_dfs_schedule(graph);
  EXPECT_EQ(result.num_slots, 0u);
}

}  // namespace
}  // namespace fdlsp
