// Tests for the Theorem 1 lower bound and the 2Δ² upper bound.
#include <gtest/gtest.h>

#include "coloring/bounds.h"
#include "coloring/checker.h"
#include "coloring/greedy.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "support/rng.h"

namespace fdlsp {
namespace {

TEST(LowerBound, TreeIsTwoDelta) {
  const Graph star = generate_star(7);
  EXPECT_EQ(lower_bound_trivial(star), 12u);
  EXPECT_EQ(lower_bound_theorem1(star), 12u);  // no triangles: stays 2Δ
}

TEST(LowerBound, CompleteGraphsAreTight) {
  // Theorem 1 is tight on complete graphs: Δ² + Δ slots needed, and
  // 2(δ + cluster + joint) reaches it.
  for (std::size_t n : {3u, 4u, 5u, 6u}) {
    const Graph complete = generate_complete(n);
    const std::size_t delta = n - 1;
    EXPECT_EQ(lower_bound_theorem1(complete), delta * delta + delta)
        << "K_" << n;
  }
}

TEST(LowerBound, K4MatchesPaperTable) {
  // Table 1: ILP(K4) = 12 and the bound reaches it: 2*(3 + 2 + 1).
  EXPECT_EQ(lower_bound_theorem1(generate_complete(4)), 12u);
  // Table 1: ILP(K5) = 20 = 2*(4 + 3 + 3).
  EXPECT_EQ(lower_bound_theorem1(generate_complete(5)), 20u);
}

TEST(LowerBound, CyclesGiveFour) {
  EXPECT_EQ(lower_bound_theorem1(generate_cycle(8)), 4u);
  EXPECT_EQ(lower_bound_theorem1(generate_cycle(7)), 4u);  // odd: bound not tight (needs 6)
}

TEST(LowerBound, TriangleIsSix) {
  // K3: 2*(2 + 1 + 0) = 6 = Δ² + Δ.
  EXPECT_EQ(lower_bound_theorem1(generate_complete(3)), 6u);
}

TEST(LowerBound, AtLeastTrivialEverywhere) {
  Rng rng(19);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph graph = generate_gnm(30, 70, rng);
    EXPECT_GE(lower_bound_theorem1(graph), lower_bound_trivial(graph));
  }
}

TEST(UpperBound, Formula) {
  EXPECT_EQ(upper_bound_colors(generate_path(2)), 2u);    // Δ=1
  EXPECT_EQ(upper_bound_colors(generate_cycle(5)), 8u);   // Δ=2
  EXPECT_EQ(upper_bound_colors(generate_complete(5)), 32u);
  EXPECT_EQ(upper_bound_colors(Graph(4)), 0u);
}

TEST(Bounds, SandwichGreedyOnRandomGraphs) {
  Rng rng(29);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph graph = generate_gnm(25, 60, rng);
    const ArcView view(graph);
    const ArcColoring coloring = greedy_coloring(view);
    ASSERT_TRUE(is_feasible_schedule(view, coloring));
    EXPECT_GE(coloring.num_colors_used(), lower_bound_theorem1(graph));
    EXPECT_LE(coloring.num_colors_used(), upper_bound_colors(graph));
  }
}

TEST(Bounds, SandwichGreedyOnUdg) {
  Rng rng(31);
  for (int trial = 0; trial < 5; ++trial) {
    const auto geo = generate_udg(80, 6.0, 0.7, rng);
    if (geo.graph.num_edges() == 0) continue;
    const ArcView view(geo.graph);
    const ArcColoring coloring = greedy_coloring(view);
    ASSERT_TRUE(is_feasible_schedule(view, coloring));
    EXPECT_GE(coloring.num_colors_used(), lower_bound_theorem1(geo.graph));
    EXPECT_LE(coloring.num_colors_used(), upper_bound_colors(geo.graph));
  }
}

}  // namespace
}  // namespace fdlsp
