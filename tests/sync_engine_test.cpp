// Tests for the synchronous LOCAL-model engine.
#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.h"
#include "sim/sync_engine.h"
#include "support/check.h"

namespace fdlsp {
namespace {

/// Floods the maximum node id seen so far; node v finishes when it has been
/// stable for `diameter` rounds. Classic leader-election-by-flooding.
class MaxFloodProgram final : public SyncProgram {
 public:
  MaxFloodProgram(NodeId self, std::size_t quiet_rounds_needed)
      : best_(self), quiet_needed_(quiet_rounds_needed) {}

  void on_round(SyncContext& ctx, std::span<const Message> inbox) override {
    NodeId before = best_;
    for (const Message& message : inbox)
      best_ = std::max(best_, static_cast<NodeId>(message.data[0]));
    if (ctx.round() == 0 || best_ != before) {
      Message message;
      message.tag = 1;
      message.data = {static_cast<std::int64_t>(best_)};
      ctx.broadcast(std::move(message));
      quiet_ = 0;
    } else {
      ++quiet_;
    }
  }

  bool ready_for_phase_advance() const override { return true; }
  void on_phase(std::size_t) override {}
  bool finished() const override { return quiet_ >= quiet_needed_; }

  NodeId best() const { return best_; }

 private:
  NodeId best_;
  std::size_t quiet_ = 0;
  std::size_t quiet_needed_;
};

TEST(SyncEngine, FloodingConvergesToGlobalMax) {
  const Graph path = generate_path(8);
  std::vector<std::unique_ptr<SyncProgram>> programs;
  for (NodeId v = 0; v < 8; ++v)
    programs.push_back(std::make_unique<MaxFloodProgram>(v, 10));
  SyncEngine engine(path, std::move(programs));
  const SyncMetrics metrics = engine.run();
  EXPECT_TRUE(metrics.completed);
  for (NodeId v = 0; v < 8; ++v)
    EXPECT_EQ(static_cast<MaxFloodProgram&>(engine.program(v)).best(), 7u);
  // The max id (node 7) must travel 7 hops: at least 7 rounds.
  EXPECT_GE(metrics.rounds, 7u);
  EXPECT_GT(metrics.messages, 0u);
}

/// Counts rounds between phase advances; finishes after two phases.
class PhaseProgram final : public SyncProgram {
 public:
  void on_round(SyncContext&, std::span<const Message>) override {
    ++rounds_seen_;
  }
  bool ready_for_phase_advance() const override { return true; }
  void on_phase(std::size_t new_phase) override { phase_ = new_phase; }
  bool finished() const override { return phase_ >= 2; }

  std::size_t phase() const { return phase_; }
  std::size_t rounds_seen() const { return rounds_seen_; }

 private:
  std::size_t phase_ = 0;
  std::size_t rounds_seen_ = 0;
};

TEST(SyncEngine, BarrierAdvancesPhases) {
  const Graph path = generate_path(3);
  std::vector<std::unique_ptr<SyncProgram>> programs;
  for (int i = 0; i < 3; ++i)
    programs.push_back(std::make_unique<PhaseProgram>());
  SyncEngine engine(path, std::move(programs));
  const SyncMetrics metrics = engine.run(100);
  EXPECT_TRUE(metrics.completed);
  EXPECT_GE(metrics.phases, 2u);
}

/// Sends one message to an illegal (non-neighbor) target.
class IllegalSendProgram final : public SyncProgram {
 public:
  void on_round(SyncContext& ctx, std::span<const Message>) override {
    Message message;
    message.tag = 1;
    ctx.send(2, std::move(message));  // node 2 is two hops away on a path
  }
  bool ready_for_phase_advance() const override { return false; }
  void on_phase(std::size_t) override {}
  bool finished() const override { return false; }
};

class IdleProgram final : public SyncProgram {
 public:
  void on_round(SyncContext&, std::span<const Message>) override {}
  bool ready_for_phase_advance() const override { return false; }
  void on_phase(std::size_t) override {}
  bool finished() const override { return false; }
};

TEST(SyncEngine, RejectsNonNeighborSend) {
  const Graph path = generate_path(3);
  std::vector<std::unique_ptr<SyncProgram>> programs;
  programs.push_back(std::make_unique<IllegalSendProgram>());  // node 0
  programs.push_back(std::make_unique<IdleProgram>());
  programs.push_back(std::make_unique<IdleProgram>());
  SyncEngine engine(path, std::move(programs));
  EXPECT_THROW(engine.run(10), contract_error);
}

TEST(SyncEngine, RoundCapStopsRunaway) {
  const Graph path = generate_path(2);
  std::vector<std::unique_ptr<SyncProgram>> programs;
  programs.push_back(std::make_unique<IdleProgram>());
  programs.push_back(std::make_unique<IdleProgram>());
  SyncEngine engine(path, std::move(programs));
  const SyncMetrics metrics = engine.run(25);
  EXPECT_FALSE(metrics.completed);
  EXPECT_EQ(metrics.rounds, 25u);
}

/// Finishes immediately but echoes every received message once — models a
/// retired relay node.
class RelayWhileFinished final : public SyncProgram {
 public:
  void on_round(SyncContext& ctx, std::span<const Message> inbox) override {
    for (const Message& message : inbox) {
      if (message.data[0] > 0) {
        Message copy;
        copy.tag = message.tag;
        copy.data = {message.data[0] - 1};
        ctx.broadcast(std::move(copy));
      }
      ++relayed_;
    }
  }
  bool ready_for_phase_advance() const override { return true; }
  void on_phase(std::size_t) override {}
  bool finished() const override { return true; }
  std::size_t relayed() const { return relayed_; }

 private:
  std::size_t relayed_ = 0;
};

/// Sends one TTL'd message then finishes.
class OneShotSender final : public SyncProgram {
 public:
  void on_round(SyncContext& ctx, std::span<const Message>) override {
    if (sent_) return;
    sent_ = true;
    Message message;
    message.tag = 1;
    message.data = {3};
    ctx.broadcast(std::move(message));
  }
  bool ready_for_phase_advance() const override { return true; }
  void on_phase(std::size_t) override {}
  bool finished() const override { return sent_; }

 private:
  bool sent_ = false;
};

TEST(SyncEngine, FinishedNodesStillRelayMessages) {
  // Retired DistMIS nodes must keep forwarding floods; the engine calls
  // finished programs whenever their inbox is non-empty. Node 3 waits for
  // the flood, nodes 1-2 are finished relays.
  class WaitForMessage final : public SyncProgram {
   public:
    void on_round(SyncContext&, std::span<const Message> inbox) override {
      if (!inbox.empty()) got_it_ = true;
    }
    bool ready_for_phase_advance() const override { return false; }
    void on_phase(std::size_t) override {}
    bool finished() const override { return got_it_; }
    bool got_it_ = false;
  };
  const Graph path = generate_path(4);
  std::vector<std::unique_ptr<SyncProgram>> programs;
  programs.push_back(std::make_unique<OneShotSender>());
  programs.push_back(std::make_unique<RelayWhileFinished>());
  programs.push_back(std::make_unique<RelayWhileFinished>());
  programs.push_back(std::make_unique<WaitForMessage>());
  SyncEngine engine(path, std::move(programs));
  const SyncMetrics metrics = engine.run(50);
  EXPECT_TRUE(metrics.completed);
  // The TTL'd flood crossed two *finished* relays to reach node 3.
  EXPECT_TRUE(static_cast<WaitForMessage&>(engine.program(3)).got_it_);
}

TEST(SyncEngine, BarrierWaitsForInFlightMessages) {
  // A message sent right before everyone votes ready must be delivered in
  // the old phase, not swallowed by the barrier.
  class SendThenReady final : public SyncProgram {
   public:
    void on_round(SyncContext& ctx, std::span<const Message> inbox) override {
      received_ += inbox.size();
      if (ctx.round() == 0) {
        Message message;
        message.tag = 1;
        message.data = {0};
        ctx.broadcast(std::move(message));
      }
      if (received_ >= 1 && phase_ >= 1) done_ = true;
    }
    bool ready_for_phase_advance() const override { return true; }
    void on_phase(std::size_t new_phase) override { phase_ = new_phase; }
    bool finished() const override { return done_; }
    std::size_t received_ = 0;
    std::size_t phase_ = 0;
    bool done_ = false;
  };
  const Graph path = generate_path(2);
  std::vector<std::unique_ptr<SyncProgram>> programs;
  programs.push_back(std::make_unique<SendThenReady>());
  programs.push_back(std::make_unique<SendThenReady>());
  SyncEngine engine(path, std::move(programs));
  const SyncMetrics metrics = engine.run(20);
  EXPECT_TRUE(metrics.completed);
  for (NodeId v = 0; v < 2; ++v)
    EXPECT_EQ(static_cast<SendThenReady&>(engine.program(v)).received_, 1u);
}

TEST(SyncEngine, RequiresOneProgramPerNode) {
  const Graph path = generate_path(3);
  std::vector<std::unique_ptr<SyncProgram>> programs;
  programs.push_back(std::make_unique<IdleProgram>());
  EXPECT_THROW(SyncEngine(path, std::move(programs)), contract_error);
}

}  // namespace
}  // namespace fdlsp
