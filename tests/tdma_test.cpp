// Tests for the TDMA layer: schedule, radio replay, energy, convergecast.
#include <gtest/gtest.h>

#include "algos/scheduler.h"
#include "coloring/conflict.h"
#include "coloring/greedy.h"
#include "graph/algorithms.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "support/rng.h"
#include "tdma/convergecast.h"
#include "tdma/energy.h"
#include "tdma/radio_sim.h"
#include "tdma/schedule.h"

namespace fdlsp {
namespace {

TdmaSchedule make_schedule(const ArcView& view) {
  return TdmaSchedule(view, greedy_coloring(view));
}

TEST(TdmaSchedule, SingleEdgeTwoSlots) {
  const Graph graph = generate_path(2);
  const ArcView view(graph);
  const TdmaSchedule schedule = make_schedule(view);
  EXPECT_EQ(schedule.frame_length(), 2u);
  EXPECT_EQ(schedule.arcs_in_slot(0).size(), 1u);
  EXPECT_EQ(schedule.arcs_in_slot(1).size(), 1u);
  EXPECT_NE(schedule.slot_of(0), schedule.slot_of(1));
}

TEST(TdmaSchedule, CompactsColorGaps) {
  const Graph graph = generate_path(2);
  const ArcView view(graph);
  ArcColoring coloring(view.num_arcs());
  coloring.set(0, 3);
  coloring.set(1, 7);  // gap-y colors must compact to 2 slots
  const TdmaSchedule schedule(view, coloring);
  EXPECT_EQ(schedule.frame_length(), 2u);
}

TEST(TdmaSchedule, RolesConsistent) {
  Rng rng(601);
  const Graph graph = generate_gnm(20, 40, rng);
  const ArcView view(graph);
  const TdmaSchedule schedule = make_schedule(view);
  for (std::size_t s = 0; s < schedule.frame_length(); ++s) {
    for (ArcId a : schedule.arcs_in_slot(s)) {
      EXPECT_EQ(schedule.role(view.tail(a), s), SlotRole::kTransmit);
      EXPECT_EQ(schedule.role(view.head(a), s), SlotRole::kReceive);
    }
  }
  // transmit_slots/receive_slots agree with role().
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (std::size_t s : schedule.transmit_slots(v))
      EXPECT_EQ(schedule.role(v, s), SlotRole::kTransmit);
    for (std::size_t s : schedule.receive_slots(v))
      EXPECT_EQ(schedule.role(v, s), SlotRole::kReceive);
    EXPECT_EQ(schedule.transmit_slots(v).size(), graph.degree(v));
    EXPECT_EQ(schedule.receive_slots(v).size(), graph.degree(v));
  }
}

TEST(TdmaSchedule, RejectsIncompleteColoring) {
  const Graph graph = generate_path(3);
  const ArcView view(graph);
  ArcColoring partial(view.num_arcs());
  partial.set(0, 0);
  EXPECT_THROW(TdmaSchedule(view, partial), contract_error);
}

TEST(RadioSim, FeasibleSchedulesAreCollisionFree) {
  Rng rng(607);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph graph = generate_gnm(25, 55, rng);
    const ArcView view(graph);
    const TdmaSchedule schedule = make_schedule(view);
    const RadioReport report = replay_frame(schedule);
    EXPECT_TRUE(report.collision_free());
    EXPECT_EQ(report.scheduled, view.num_arcs());
    EXPECT_EQ(report.delivered, view.num_arcs());
  }
}

TEST(RadioSim, DetectsHiddenTerminalPhysically) {
  // Force the classic violation on a path 0-1-2-3: (0->1) and (2->3) share
  // a slot; node 1 hears 0 and 2 simultaneously.
  const Graph path = generate_path(4);
  const ArcView view(path);
  ArcColoring bad(view.num_arcs());
  Color next = 0;
  for (ArcId a = 0; a < view.num_arcs(); ++a) bad.set(a, next++);
  bad.set(view.find_arc(0, 1), 100);
  bad.set(view.find_arc(2, 3), 100);
  const TdmaSchedule schedule(view, bad);
  const RadioReport report = replay_frame(schedule);
  EXPECT_FALSE(report.collision_free());
  bool found = false;
  for (const RadioFailure& failure : report.failures) {
    if (failure.arc == view.find_arc(0, 1)) {
      found = true;
      EXPECT_EQ(failure.interferers, 2u);  // hears 0 and 2
    }
  }
  EXPECT_TRUE(found);
}

TEST(RadioSim, DetectsTxRxSameNode) {
  // (0->1) and (1->2) in one slot: node 1 transmits while receiving — the
  // schedule constructor itself must reject this role clash.
  const Graph path = generate_path(3);
  const ArcView view(path);
  ArcColoring bad(view.num_arcs());
  Color next = 0;
  for (ArcId a = 0; a < view.num_arcs(); ++a) bad.set(a, next++);
  bad.set(view.find_arc(0, 1), 50);
  bad.set(view.find_arc(1, 2), 50);
  EXPECT_THROW(TdmaSchedule(view, bad), contract_error);
}

TEST(RadioSim, AgreesWithConflictPredicateOnAllPairSlots) {
  // Oracle cross-check: for every arc pair of a small graph, putting the two
  // arcs alone in a shared slot collides iff arcs_conflict says so.
  Rng rng(611);
  const Graph graph = generate_gnm(8, 12, rng);
  const ArcView view(graph);
  for (ArcId a = 0; a < view.num_arcs(); ++a) {
    for (ArcId b = a + 1; b < view.num_arcs(); ++b) {
      // Color everything distinct except the pair.
      ArcColoring coloring(view.num_arcs());
      Color next = 1;
      for (ArcId arc = 0; arc < view.num_arcs(); ++arc) {
        if (arc == a || arc == b)
          coloring.set(arc, 0);
        else
          coloring.set(arc, ++next);
      }
      const NodeId heads[2] = {view.head(a), view.head(b)};
      const NodeId tails[2] = {view.tail(a), view.tail(b)};
      if (heads[0] == tails[1] || heads[1] == tails[0]) {
        // A node transmitting and receiving in one slot is a role clash the
        // schedule constructor itself rejects.
        EXPECT_TRUE(arcs_conflict(view, a, b));
        EXPECT_THROW(TdmaSchedule(view, coloring), contract_error);
        continue;
      }
      if (tails[0] == tails[1]) {
        // Same transmitter: physically a broadcast (each receiver hears one
        // signal), but FDLSP forbids it — a sensor sends one link's payload
        // per slot (constraint 4). Semantic, not physical, so the radio
        // replay is allowed to deliver here.
        EXPECT_TRUE(arcs_conflict(view, a, b));
        continue;
      }
      const TdmaSchedule schedule(view, coloring);
      RadioReport report = replay_frame(schedule);
      bool pair_failed = false;
      for (const RadioFailure& failure : report.failures)
        pair_failed |= (failure.arc == a || failure.arc == b);
      EXPECT_EQ(pair_failed, arcs_conflict(view, a, b))
          << "arcs " << a << "," << b;
    }
  }
}

TEST(Energy, IdleNodesSleep) {
  const Graph star = generate_star(5);
  const ArcView view(star);
  const TdmaSchedule schedule = make_schedule(view);
  const EnergyReport report = account_energy(schedule);
  // The hub is busy in every slot (every arc touches it): duty cycle 1.
  EXPECT_DOUBLE_EQ(report.per_node[0].duty_cycle(), 1.0);
  // A leaf is busy in exactly 2 slots of the frame.
  const NodeEnergy& leaf = report.per_node[1];
  EXPECT_EQ(leaf.transmit_slots, 1u);
  EXPECT_EQ(leaf.receive_slots, 1u);
  EXPECT_EQ(leaf.sleep_slots, schedule.frame_length() - 2);
  EXPECT_GT(report.total_energy, 0.0);
  EXPECT_LE(report.max_duty_cycle, 1.0);
}

TEST(Energy, CustomModelScales) {
  const Graph graph = generate_path(2);
  const ArcView view(graph);
  const TdmaSchedule schedule = make_schedule(view);
  EnergyModel expensive;
  expensive.transmit_cost = 10.0;
  expensive.receive_cost = 5.0;
  expensive.sleep_cost = 0.0;
  const EnergyReport report = account_energy(schedule, expensive);
  // Each node transmits once and receives once: 15 energy each.
  EXPECT_DOUBLE_EQ(report.per_node[0].energy, 15.0);
  EXPECT_DOUBLE_EQ(report.per_node[1].energy, 15.0);
  EXPECT_DOUBLE_EQ(report.total_energy, 30.0);
}

TEST(Convergecast, LineDeliversEverything) {
  const Graph path = generate_path(5);
  const ArcView view(path);
  const TdmaSchedule schedule = make_schedule(view);
  const ConvergecastReport report = run_convergecast(schedule, 0);
  EXPECT_EQ(report.packets_delivered, 4u);
  EXPECT_GT(report.frames, 0u);
  EXPECT_GT(report.slot_utilization, 0.0);
  EXPECT_LE(report.slot_utilization, 1.0);
}

TEST(Convergecast, StarDrainsInLeafCountFrames) {
  // Hub sink: leaves each deliver directly; one uplink per leaf per frame,
  // all leaf slots distinct, so a single frame drains everything.
  const Graph star = generate_star(6);
  const ArcView view(star);
  const TdmaSchedule schedule = make_schedule(view);
  const ConvergecastReport report = run_convergecast(schedule, 0);
  EXPECT_EQ(report.packets_delivered, 5u);
  EXPECT_EQ(report.frames, 1u);
}

TEST(Convergecast, RandomConnectedGraphs) {
  Rng rng(613);
  int done = 0;
  while (done < 5) {
    const Graph graph = generate_gnm(30, 70, rng);
    if (!is_connected(graph)) continue;
    ++done;
    const ArcView view(graph);
    const TdmaSchedule schedule = make_schedule(view);
    const ConvergecastReport report = run_convergecast(schedule, 0);
    EXPECT_EQ(report.packets_delivered, graph.num_nodes() - 1);
    EXPECT_LE(report.frames, 2 * graph.num_nodes());
  }
}

TEST(Convergecast, SchedulerOutputsDriveTraffic) {
  // End-to-end: a DistMIS schedule carries a convergecast epoch.
  Rng rng(617);
  Graph graph = generate_gnm(25, 60, rng);
  while (!is_connected(graph)) graph = generate_gnm(25, 60, rng);
  const auto result = run_scheduler(SchedulerKind::kDistMisGbg, graph, 3);
  const ArcView view(graph);
  const TdmaSchedule schedule(view, result.coloring);
  EXPECT_TRUE(replay_frame(schedule).collision_free());
  const ConvergecastReport report = run_convergecast(schedule, 0);
  EXPECT_EQ(report.packets_delivered, graph.num_nodes() - 1);
}

TEST(Energy, TransmitSlotsSumToArcCount) {
  // Same-tail arcs conflict, so every out-arc of a node occupies its own
  // transmit slot: per node tx slots == degree, summing to 2m.
  Rng rng(619);
  const Graph graph = generate_gnm(30, 70, rng);
  const ArcView view(graph);
  const TdmaSchedule schedule(view, greedy_coloring(view));
  const EnergyReport report = account_energy(schedule);
  std::size_t total_tx = 0, total_rx = 0;
  for (const NodeEnergy& node : report.per_node) {
    total_tx += node.transmit_slots;
    total_rx += node.receive_slots;
  }
  EXPECT_EQ(total_tx, view.num_arcs());
  EXPECT_EQ(total_rx, view.num_arcs());
}

TEST(Convergecast, AnySinkWorks) {
  Rng rng(621);
  Graph graph = generate_gnm(20, 45, rng);
  while (!is_connected(graph)) graph = generate_gnm(20, 45, rng);
  const ArcView view(graph);
  const TdmaSchedule schedule(view, greedy_coloring(view));
  for (NodeId sink : {NodeId{0}, NodeId{7}, NodeId{19}}) {
    const ConvergecastReport report = run_convergecast(schedule, sink);
    EXPECT_EQ(report.packets_delivered, graph.num_nodes() - 1)
        << "sink " << sink;
  }
}

TEST(Convergecast, RejectsDisconnected) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(2, 3);
  const Graph graph = builder.build();
  const ArcView view(graph);
  const TdmaSchedule schedule = make_schedule(view);
  EXPECT_THROW(run_convergecast(schedule, 0), contract_error);
}

}  // namespace
}  // namespace fdlsp
