// Tests for the conflict graph, DSATUR, and the exact branch-and-bound —
// including the Table 1 reference optima.
#include <gtest/gtest.h>

#include "coloring/checker.h"
#include "coloring/conflict_graph.h"
#include "coloring/exact.h"
#include "coloring/greedy.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "support/rng.h"

namespace fdlsp {
namespace {

bool is_proper_vertex_coloring(const Graph& graph,
                               const std::vector<Color>& colors) {
  for (const Edge& e : graph.edges())
    if (colors[e.u] == colors[e.v]) return false;
  for (Color c : colors)
    if (c == kNoColor) return false;
  return true;
}

TEST(ConflictGraph, SizesMatchArcCount) {
  const Graph path = generate_path(4);
  const ArcView view(path);
  const Graph conflict = build_conflict_graph(view);
  EXPECT_EQ(conflict.num_nodes(), view.num_arcs());
}

TEST(ConflictGraph, CompleteGraphYieldsCompleteConflict) {
  const Graph complete = generate_complete(4);
  const ArcView view(complete);
  const Graph conflict = build_conflict_graph(view);
  const std::size_t a = view.num_arcs();
  EXPECT_EQ(conflict.num_edges(), a * (a - 1) / 2);
}

TEST(Dsatur, ProperOnRandomGraphs) {
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph graph = generate_gnm(30, 100, rng);
    const auto colors = dsatur_coloring(graph);
    EXPECT_TRUE(is_proper_vertex_coloring(graph, colors));
  }
}

TEST(ExactVertexColoring, KnownChromaticNumbers) {
  EXPECT_EQ(exact_vertex_coloring(generate_complete(5)).num_colors, 5u);
  EXPECT_EQ(exact_vertex_coloring(generate_cycle(6)).num_colors, 2u);
  EXPECT_EQ(exact_vertex_coloring(generate_cycle(7)).num_colors, 3u);
  EXPECT_EQ(exact_vertex_coloring(generate_complete_bipartite(4, 5)).num_colors,
            2u);
  EXPECT_EQ(exact_vertex_coloring(generate_path(6)).num_colors, 2u);
  EXPECT_EQ(exact_vertex_coloring(Graph(3)).num_colors, 1u);
}

TEST(ExactVertexColoring, PetersenGraphNeedsThree) {
  // Petersen graph: outer C5, inner pentagram, spokes. Chromatic number 3.
  GraphBuilder builder(10);
  for (NodeId i = 0; i < 5; ++i) {
    builder.add_edge(i, (i + 1) % 5);              // outer cycle
    builder.add_edge(5 + i, 5 + ((i + 2) % 5));    // pentagram
    builder.add_edge(i, 5 + i);                    // spokes
  }
  const auto result = exact_vertex_coloring(builder.build());
  EXPECT_TRUE(result.optimal);
  EXPECT_EQ(result.num_colors, 3u);
}

TEST(ExactVertexColoring, NeverWorseThanDsatur) {
  Rng rng(37);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph graph = generate_gnm(16, 40, rng);
    const auto exact = exact_vertex_coloring(graph);
    const auto greedy = dsatur_coloring(graph);
    Color max_greedy = 0;
    for (Color c : greedy) max_greedy = std::max(max_greedy, c);
    EXPECT_TRUE(exact.optimal);
    EXPECT_LE(exact.num_colors, static_cast<std::size_t>(max_greedy) + 1);
    EXPECT_TRUE(is_proper_vertex_coloring(graph, exact.colors));
  }
}

// --- Table 1 reference optima (the paper's ILP column) ---

TEST(OptimalFdlsp, Table1CompleteBipartite22) {
  const Graph graph = generate_complete_bipartite(2, 2);
  const auto result = optimal_fdlsp(ArcView(graph));
  EXPECT_TRUE(result.optimal);
  EXPECT_EQ(result.num_colors, 4u);
}

TEST(OptimalFdlsp, Table1CompleteBipartite33) {
  const Graph graph = generate_complete_bipartite(3, 3);
  const auto result = optimal_fdlsp(ArcView(graph));
  EXPECT_TRUE(result.optimal);
  EXPECT_EQ(result.num_colors, 9u);
}

TEST(OptimalFdlsp, CompleteBipartite44Is16NotPapers15) {
  // Table 1 reports ILP(K_{4,4}) = 15, but that is impossible under the
  // paper's own constraint 2: the 16 arcs directed A -> B pairwise conflict
  // (every receiver in B is adjacent to every transmitter in A), forming a
  // 16-clique in the conflict graph, so 16 slots are necessary — and
  // pairing each A->B arc with a disjoint B->A arc achieves 16. The same
  // argument yields 9 for K_{3,3}, which Table 1 *does* report. See
  // EXPERIMENTS.md.
  const Graph graph = generate_complete_bipartite(4, 4);
  const auto result = optimal_fdlsp(ArcView(graph));
  EXPECT_TRUE(result.optimal);
  EXPECT_EQ(result.num_colors, 16u);
}

TEST(OptimalFdlsp, Table1K4) {
  const Graph graph = generate_complete(4);
  const auto result = optimal_fdlsp(ArcView(graph));
  EXPECT_TRUE(result.optimal);
  EXPECT_EQ(result.num_colors, 12u);
}

TEST(OptimalFdlsp, Table1K5) {
  const Graph graph = generate_complete(5);
  const auto result = optimal_fdlsp(ArcView(graph));
  EXPECT_TRUE(result.optimal);
  EXPECT_EQ(result.num_colors, 20u);
}

TEST(OptimalFdlsp, SmallCycles) {
  // The paper (citing [8]) states "even cycles require only 4 colors and odd
  // cycles 6". Under the paper's own ILP constraints that only holds for
  // C4: in C6 a slot can carry at most 2 arcs (any third arc hits the
  // hidden-terminal rule), so 12 arcs need 6 slots, and C5 packs its 10 arcs
  // into 5 slots of 2 (e.g. (i->i+1) with (i+3->i+2)). We assert the ILP
  // optima; EXPERIMENTS.md records the divergence from the quoted remark.
  const auto c4 = optimal_fdlsp(ArcView(generate_cycle(4)));
  EXPECT_TRUE(c4.optimal);
  EXPECT_EQ(c4.num_colors, 4u);
  const auto c5 = optimal_fdlsp(ArcView(generate_cycle(5)));
  EXPECT_TRUE(c5.optimal);
  EXPECT_EQ(c5.num_colors, 5u);
  const auto c6 = optimal_fdlsp(ArcView(generate_cycle(6)));
  EXPECT_TRUE(c6.optimal);
  EXPECT_EQ(c6.num_colors, 6u);
}

TEST(OptimalFdlsp, TreeIsTwoDelta) {
  Rng rng(3);
  const Graph tree = generate_random_tree(9, rng);
  const auto result = optimal_fdlsp(ArcView(tree));
  EXPECT_TRUE(result.optimal);
  EXPECT_EQ(result.num_colors, 2 * tree.max_degree());
}

TEST(OptimalFdlsp, ColoringIsFeasibleAndNotBeatenByGreedy) {
  Rng rng(43);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph graph = generate_gnm(10, 16, rng);
    const ArcView view(graph);
    const auto exact = optimal_fdlsp(view);
    EXPECT_TRUE(is_feasible_schedule(view, exact.coloring));
    const ArcColoring greedy = greedy_coloring(view);
    EXPECT_LE(exact.num_colors, greedy.num_colors_used());
  }
}

TEST(OptimalFdlsp, BudgetExhaustionStillFeasible) {
  const Graph graph = generate_complete_bipartite(3, 3);
  ExactOptions options;
  options.max_nodes = 10;  // force early abort
  const auto result = optimal_fdlsp(ArcView(graph), options);
  EXPECT_TRUE(is_feasible_schedule(ArcView(graph), result.coloring));
  EXPECT_GE(result.num_colors, 9u);  // incumbent can't beat the optimum
}

}  // namespace
}  // namespace fdlsp
