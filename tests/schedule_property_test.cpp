// Cross-algorithm property tests: every scheduler produces feasible
// schedules inside the theoretical bounds on randomized instance sweeps,
// and the relative orderings the paper reports hold on average.
#include <gtest/gtest.h>

#include <tuple>

#include "algos/scheduler.h"
#include "coloring/bounds.h"
#include "coloring/checker.h"
#include "coloring/exact.h"
#include "graph/algorithms.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "support/rng.h"

namespace fdlsp {
namespace {

using Param = std::tuple<SchedulerKind, std::uint64_t /*seed*/>;

class AllSchedulersTest : public ::testing::TestWithParam<Param> {};

TEST_P(AllSchedulersTest, FeasibleAndBoundedOnConnectedGnm) {
  const auto [kind, seed] = GetParam();
  Rng rng(seed);
  Graph graph = generate_gnm(18, 36, rng);
  while (!is_connected(graph)) graph = generate_gnm(18, 36, rng);
  const auto result = run_scheduler(kind, graph, seed);
  const ArcView view(graph);
  EXPECT_TRUE(is_feasible_schedule(view, result.coloring))
      << scheduler_name(kind);
  EXPECT_GE(result.num_slots, lower_bound_trivial(graph));
  // D-MGC may exceed 2Δ² only through injection; everyone else must not.
  if (kind != SchedulerKind::kDmgc) {
    EXPECT_LE(result.num_slots, upper_bound_colors(graph));
  }
}

TEST_P(AllSchedulersTest, FeasibleOnUdg) {
  const auto [kind, seed] = GetParam();
  Rng rng(seed * 77 + 1);
  auto geo = generate_udg(50, 4.0, 0.6, rng);
  auto nodes = largest_component(geo.graph);
  const Graph graph = induced_subgraph(geo.graph, nodes).graph;
  const auto result = run_scheduler(kind, graph, seed);
  EXPECT_TRUE(is_feasible_schedule(ArcView(graph), result.coloring))
      << scheduler_name(kind);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllSchedulersTest,
    ::testing::Combine(::testing::Values(SchedulerKind::kDistMisGbg,
                                         SchedulerKind::kDistMisGeneral,
                                         SchedulerKind::kDfs,
                                         SchedulerKind::kDmgc,
                                         SchedulerKind::kGreedy),
                       ::testing::Values(1u, 2u, 3u, 4u)),
    [](const auto& param_info) {
      std::string name = scheduler_name(std::get<0>(param_info.param)) +
                         "_seed" + std::to_string(std::get<1>(param_info.param));
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(ScheduleComparison, NoAlgorithmBeatsTheOptimum) {
  Rng rng(401);
  for (int trial = 0; trial < 4; ++trial) {
    Graph graph = generate_gnm(9, 14, rng);
    while (!is_connected(graph)) graph = generate_gnm(9, 14, rng);
    const auto optimal = optimal_fdlsp(ArcView(graph));
    ASSERT_TRUE(optimal.optimal);
    for (SchedulerKind kind :
         {SchedulerKind::kDistMisGbg, SchedulerKind::kDistMisGeneral,
          SchedulerKind::kDfs, SchedulerKind::kDmgc, SchedulerKind::kGreedy}) {
      const auto result = run_scheduler(kind, graph, 7);
      EXPECT_GE(result.num_slots, optimal.num_colors)
          << scheduler_name(kind) << " trial " << trial;
    }
  }
}

TEST(ScheduleComparison, ProposedAlgorithmsBeatDmgcOnAverageGeneralGraphs) {
  // Figures 11-12: DFS produces ~25% fewer slots than D-MGC on general
  // graphs; DistMIS also fewer. Assert the averaged ordering (with slack).
  Rng rng(403);
  double dfs_total = 0, dmgc_total = 0, mis_total = 0;
  int trials = 0;
  while (trials < 8) {
    const Graph graph = generate_gnm(40, 140, rng);
    if (!is_connected(graph)) continue;
    ++trials;
    dfs_total += static_cast<double>(
        run_scheduler(SchedulerKind::kDfs, graph, 11).num_slots);
    dmgc_total += static_cast<double>(
        run_scheduler(SchedulerKind::kDmgc, graph, 11).num_slots);
    mis_total += static_cast<double>(
        run_scheduler(SchedulerKind::kDistMisGeneral, graph, 11).num_slots);
  }
  EXPECT_LT(dfs_total, dmgc_total);
  EXPECT_LT(mis_total, dmgc_total * 1.1);  // DistMIS is close or better
}

TEST(ScheduleName, AllKindsNamed) {
  EXPECT_EQ(scheduler_name(SchedulerKind::kDistMisGbg), "distMIS");
  EXPECT_EQ(scheduler_name(SchedulerKind::kDistMisGeneral), "distMIS-gen");
  EXPECT_EQ(scheduler_name(SchedulerKind::kDfs), "DFS");
  EXPECT_EQ(scheduler_name(SchedulerKind::kDmgc), "D-MGC");
  EXPECT_EQ(scheduler_name(SchedulerKind::kGreedy), "greedy");
  EXPECT_EQ(scheduler_name(SchedulerKind::kRandomized), "randomized");
}

}  // namespace
}  // namespace fdlsp
