// Tests for traversal / connectivity / neighborhood algorithms.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "support/rng.h"

namespace fdlsp {
namespace {

TEST(Bfs, DistancesOnPath) {
  const Graph path = generate_path(5);
  const auto dist = bfs_distances(path, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
}

TEST(Bfs, UnreachableMarked) {
  Graph graph(3);  // no edges
  const auto dist = bfs_distances(graph, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], kUnreachable);
  EXPECT_EQ(dist[2], kUnreachable);
}

TEST(Connectivity, DetectsDisconnection) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(2, 3);
  const Graph graph = builder.build();
  EXPECT_FALSE(is_connected(graph));
  EXPECT_EQ(count_components(graph), 2u);
  const auto label = connected_components(graph);
  EXPECT_EQ(label[0], label[1]);
  EXPECT_EQ(label[2], label[3]);
  EXPECT_NE(label[0], label[2]);
}

TEST(Connectivity, LargestComponent) {
  GraphBuilder builder(6);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(3, 4);
  const Graph graph = builder.build();
  const auto largest = largest_component(graph);
  EXPECT_EQ(largest, (std::vector<NodeId>{0, 1, 2}));
}

TEST(InducedSubgraph, KeepsInternalEdgesOnly) {
  const Graph complete = generate_complete(5);
  const auto sub = induced_subgraph(complete, {1, 3, 4});
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 3u);
  EXPECT_EQ(sub.to_original.size(), 3u);
  EXPECT_EQ(sub.to_sub[0], kNoNode);
  EXPECT_EQ(sub.to_original[sub.to_sub[3]], 3u);
}

TEST(KHop, NeighborhoodsOnPath) {
  const Graph path = generate_path(7);
  EXPECT_EQ(k_hop_neighborhood(path, 3, 1), (std::vector<NodeId>{2, 4}));
  EXPECT_EQ(k_hop_neighborhood(path, 3, 2), (std::vector<NodeId>{1, 2, 4, 5}));
  EXPECT_EQ(k_hop_neighborhood(path, 0, 3), (std::vector<NodeId>{1, 2, 3}));
}

TEST(CommonNeighbors, TriangleSupport) {
  const Graph complete = generate_complete(4);
  EXPECT_EQ(common_neighbors(complete, 0, 1), (std::vector<NodeId>{2, 3}));
  const Graph path = generate_path(3);
  EXPECT_TRUE(common_neighbors(path, 0, 1).empty());
}

TEST(Triangles, CountsOnKnownGraphs) {
  EXPECT_EQ(count_triangles(generate_complete(4)), 4u);
  EXPECT_EQ(count_triangles(generate_complete(5)), 10u);
  EXPECT_EQ(count_triangles(generate_cycle(5)), 0u);
  EXPECT_EQ(count_triangles(generate_complete_bipartite(3, 3)), 0u);
}

TEST(Diameter, KnownValues) {
  EXPECT_EQ(diameter(generate_path(6)), 5u);
  EXPECT_EQ(diameter(generate_cycle(8)), 4u);
  EXPECT_EQ(diameter(generate_complete(5)), 1u);
}

TEST(Diameter, DisconnectedIsUnreachable) {
  Graph graph(2);
  EXPECT_EQ(diameter(graph), kUnreachable);
}

TEST(KHop, MatchesBfsOnRandomGraphs) {
  Rng rng(77);
  const Graph graph = generate_gnm(40, 80, rng);
  for (NodeId v = 0; v < 40; v += 7) {
    const auto dist = bfs_distances(graph, v);
    for (std::size_t radius = 1; radius <= 3; ++radius) {
      const auto hood = k_hop_neighborhood(graph, v, radius);
      for (NodeId w = 0; w < 40; ++w) {
        const bool inside = w != v && dist[w] != kUnreachable &&
                            dist[w] <= radius;
        const bool listed =
            std::binary_search(hood.begin(), hood.end(), w);
        EXPECT_EQ(inside, listed) << "v=" << v << " w=" << w;
      }
    }
  }
}

}  // namespace
}  // namespace fdlsp
