// Tests for the IlpModel container and the two-phase simplex.
#include <gtest/gtest.h>

#include "ilp/model.h"
#include "ilp/simplex.h"

namespace fdlsp {
namespace {

TEST(IlpModel, VariableBookkeeping) {
  IlpModel model;
  const auto x = model.add_variable(0.0, 5.0, "x");
  const auto b = model.add_binary("b");
  EXPECT_EQ(model.num_variables(), 2u);
  EXPECT_FALSE(model.is_integral(x));
  EXPECT_TRUE(model.is_integral(b));
  EXPECT_DOUBLE_EQ(model.upper_bound(x), 5.0);
  EXPECT_EQ(model.name(b), "b");
  EXPECT_THROW(model.add_variable(2.0, 1.0), contract_error);
}

TEST(IlpModel, FeasibilityPredicate) {
  IlpModel model;
  const auto x = model.add_variable(0.0, 10.0);
  const auto y = model.add_variable(0.0, 10.0);
  model.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kLessEqual, 5.0});
  EXPECT_TRUE(model.is_feasible_point({2.0, 3.0}));
  EXPECT_FALSE(model.is_feasible_point({3.0, 3.0}));
  EXPECT_FALSE(model.is_feasible_point({-1.0, 0.0}));
  EXPECT_FALSE(model.is_feasible_point({0.0}));
}

TEST(Simplex, TextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  ->  opt 36 at (2, 6).
  IlpModel model;
  const auto x = model.add_variable(0.0, kInf);
  const auto y = model.add_variable(0.0, kInf);
  model.add_constraint({{{x, 1.0}}, Sense::kLessEqual, 4.0});
  model.add_constraint({{{y, 2.0}}, Sense::kLessEqual, 12.0});
  model.add_constraint({{{x, 3.0}, {y, 2.0}}, Sense::kLessEqual, 18.0});
  model.set_objective(Objective::kMaximize, {{x, 3.0}, {y, 5.0}});
  const LpResult result = solve_lp_relaxation(model);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 36.0, 1e-7);
  EXPECT_NEAR(result.x[x], 2.0, 1e-7);
  EXPECT_NEAR(result.x[y], 6.0, 1e-7);
}

TEST(Simplex, MinimizationWithGreaterEqual) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1  ->  opt at (4, 0) = 8.
  IlpModel model;
  const auto x = model.add_variable(0.0, kInf);
  const auto y = model.add_variable(0.0, kInf);
  model.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kGreaterEqual, 4.0});
  model.add_constraint({{{x, 1.0}}, Sense::kGreaterEqual, 1.0});
  model.set_objective(Objective::kMinimize, {{x, 2.0}, {y, 3.0}});
  const LpResult result = solve_lp_relaxation(model);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 8.0, 1e-7);
}

TEST(Simplex, EqualityConstraints) {
  // min x + y s.t. x + 2y == 6, x - y == 0  ->  x = y = 2, obj 4.
  IlpModel model;
  const auto x = model.add_variable(0.0, kInf);
  const auto y = model.add_variable(0.0, kInf);
  model.add_constraint({{{x, 1.0}, {y, 2.0}}, Sense::kEqual, 6.0});
  model.add_constraint({{{x, 1.0}, {y, -1.0}}, Sense::kEqual, 0.0});
  model.set_objective(Objective::kMinimize, {{x, 1.0}, {y, 1.0}});
  const LpResult result = solve_lp_relaxation(model);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.x[x], 2.0, 1e-7);
  EXPECT_NEAR(result.x[y], 2.0, 1e-7);
  EXPECT_NEAR(result.objective, 4.0, 1e-7);
}

TEST(Simplex, DetectsInfeasibility) {
  IlpModel model;
  const auto x = model.add_variable(0.0, 1.0);
  model.add_constraint({{{x, 1.0}}, Sense::kGreaterEqual, 2.0});
  model.set_objective(Objective::kMinimize, {{x, 1.0}});
  EXPECT_EQ(solve_lp_relaxation(model).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  IlpModel model;
  const auto x = model.add_variable(0.0, kInf);
  model.set_objective(Objective::kMaximize, {{x, 1.0}});
  EXPECT_EQ(solve_lp_relaxation(model).status, LpStatus::kUnbounded);
}

TEST(Simplex, RespectsVariableBounds) {
  // max x + y with x in [1, 3], y in [0, 2].
  IlpModel model;
  const auto x = model.add_variable(1.0, 3.0);
  const auto y = model.add_variable(0.0, 2.0);
  model.set_objective(Objective::kMaximize, {{x, 1.0}, {y, 1.0}});
  const LpResult result = solve_lp_relaxation(model);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 5.0, 1e-7);
}

TEST(Simplex, NonzeroLowerBoundShiftIsCorrect) {
  // min x with x in [2, 10] and x >= 1: optimum is the lower bound 2.
  IlpModel model;
  const auto x = model.add_variable(2.0, 10.0);
  model.add_constraint({{{x, 1.0}}, Sense::kGreaterEqual, 1.0});
  model.set_objective(Objective::kMinimize, {{x, 1.0}});
  const LpResult result = solve_lp_relaxation(model);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 2.0, 1e-7);
  EXPECT_NEAR(result.x[x], 2.0, 1e-7);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Known degenerate LP (Beale-like structure); Bland's rule must terminate.
  IlpModel model;
  const auto x1 = model.add_variable(0.0, kInf);
  const auto x2 = model.add_variable(0.0, kInf);
  const auto x3 = model.add_variable(0.0, kInf);
  model.add_constraint(
      {{{x1, 0.25}, {x2, -8.0}, {x3, -1.0}}, Sense::kLessEqual, 0.0});
  model.add_constraint(
      {{{x1, 0.5}, {x2, -12.0}, {x3, -0.5}}, Sense::kLessEqual, 0.0});
  model.add_constraint({{{x3, 1.0}}, Sense::kLessEqual, 1.0});
  model.set_objective(Objective::kMaximize,
                      {{x1, 0.75}, {x2, -20.0}, {x3, 0.5}});
  const LpResult result = solve_lp_relaxation(model);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 1.25, 1e-6);
}

TEST(Simplex, LpRelaxationIgnoresIntegrality) {
  // max x + y, x,y binary, x + y <= 1.5 -> LP gives 1.5.
  IlpModel model;
  const auto x = model.add_binary();
  const auto y = model.add_binary();
  model.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kLessEqual, 1.5});
  model.set_objective(Objective::kMaximize, {{x, 1.0}, {y, 1.0}});
  const LpResult result = solve_lp_relaxation(model);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 1.5, 1e-7);
}

}  // namespace
}  // namespace fdlsp
