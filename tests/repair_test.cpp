// Tests for incremental schedule repair (future-work extension).
#include <gtest/gtest.h>

#include "algos/repair.h"
#include "coloring/checker.h"
#include "coloring/greedy.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "support/rng.h"

namespace fdlsp {
namespace {

TEST(TransferColoring, KeepsSurvivingLinks) {
  // Path 0-1-2 -> edge {1,2} removed, edge {0,2}... keep node set, change
  // edges: old path 0-1-2, new graph 0-1 only plus 1-2 replaced by 0-2.
  const Graph old_graph = generate_path(3);
  const ArcView old_view(old_graph);
  const ArcColoring old_coloring = greedy_coloring(old_view);

  GraphBuilder builder(3);
  builder.add_edge(0, 1);  // survives
  builder.add_edge(0, 2);  // new link
  const Graph new_graph = builder.build();
  const ArcView new_view(new_graph);
  const ArcColoring transferred =
      transfer_coloring(old_view, old_coloring, new_view);

  EXPECT_EQ(transferred.color(new_view.find_arc(0, 1)),
            old_coloring.color(old_view.find_arc(0, 1)));
  EXPECT_EQ(transferred.color(new_view.find_arc(1, 0)),
            old_coloring.color(old_view.find_arc(1, 0)));
  EXPECT_FALSE(transferred.is_colored(new_view.find_arc(0, 2)));
  EXPECT_FALSE(transferred.is_colored(new_view.find_arc(2, 0)));
}

TEST(Repair, CompletesPartialColoring) {
  const Graph graph = generate_cycle(6);
  const ArcView view(graph);
  ArcColoring partial(view.num_arcs());  // nothing colored
  const RepairResult result = repair_schedule(view, std::move(partial));
  EXPECT_TRUE(is_feasible_schedule(view, result.coloring));
  EXPECT_EQ(result.recolored_arcs, view.num_arcs());
}

TEST(Repair, NoOpOnFeasibleSchedule) {
  Rng rng(701);
  const Graph graph = generate_gnm(20, 45, rng);
  const ArcView view(graph);
  const ArcColoring coloring = greedy_coloring(view);
  const RepairResult result = repair_schedule(view, coloring);
  EXPECT_EQ(result.recolored_arcs, 0u);
  EXPECT_EQ(result.coloring.raw(), coloring.raw());
}

TEST(Repair, ClearsInjectedConflicts) {
  const Graph path = generate_path(4);
  const ArcView view(path);
  ArcColoring bad = greedy_coloring(view);
  // Force the hidden-terminal clash (0->1) vs (2->3).
  bad.set(view.find_arc(2, 3), bad.color(view.find_arc(0, 1)));
  const RepairResult result = repair_schedule(view, std::move(bad));
  EXPECT_TRUE(is_feasible_schedule(view, result.coloring));
  EXPECT_GE(result.recolored_arcs, 1u);
}

TEST(Repair, NodeJoinTouchesNeighborhoodOnly) {
  // A 30-node UDG gains one node; repair should recolor only arcs near the
  // newcomer, far fewer than a full recompute.
  Rng rng(703);
  auto positions = generate_udg(30, 4.0, 0.8, rng).positions;
  const Graph old_graph = udg_from_positions(positions, 0.8);
  const ArcView old_view(old_graph);
  const ArcColoring old_coloring = greedy_coloring(old_view);

  positions.push_back(Point{2.0, 2.0});  // join near the middle
  const Graph new_graph = udg_from_positions(positions, 0.8);
  const ArcView new_view(new_graph);

  ArcColoring transferred =
      transfer_coloring(old_view, old_coloring, new_view);
  const RepairResult result =
      repair_schedule(new_view, std::move(transferred));
  EXPECT_TRUE(is_feasible_schedule(new_view, result.coloring));
  EXPECT_LT(result.recolored_arcs, new_view.num_arcs() / 2);
}

TEST(Repair, NodeFailureNeedsNoRecoloring) {
  // Removing links never creates conflicts: transfer + repair recolors 0.
  Rng rng(709);
  auto positions = generate_udg(25, 4.0, 0.8, rng).positions;
  const Graph old_graph = udg_from_positions(positions, 0.8);
  const ArcView old_view(old_graph);
  const ArcColoring old_coloring = greedy_coloring(old_view);

  positions[3] = Point{100.0, 100.0};  // node 3 effectively fails
  const Graph new_graph = udg_from_positions(positions, 0.8);
  const ArcView new_view(new_graph);
  ArcColoring transferred =
      transfer_coloring(old_view, old_coloring, new_view);
  const RepairResult result =
      repair_schedule(new_view, std::move(transferred));
  EXPECT_TRUE(is_feasible_schedule(new_view, result.coloring));
  EXPECT_EQ(result.recolored_arcs, 0u);
}

TEST(Repair, RandomChurnSequenceStaysFeasible) {
  // Failure injection: 30 random moves; feasibility must hold after every
  // repair and the cost must stay below full recompute.
  Rng rng(711);
  auto positions = generate_udg(40, 5.0, 0.8, rng).positions;
  Graph graph = udg_from_positions(positions, 0.8);
  ArcColoring coloring = greedy_coloring(ArcView(graph));

  for (int step = 0; step < 30; ++step) {
    const std::size_t mover = rng.next_index(positions.size());
    positions[mover] =
        Point{rng.next_double() * 5.0, rng.next_double() * 5.0};
    const Graph new_graph = udg_from_positions(positions, 0.8);
    const ArcView new_view(new_graph);
    ArcColoring transferred =
        transfer_coloring(ArcView(graph), coloring, new_view);
    RepairResult result = repair_schedule(new_view, std::move(transferred));
    ASSERT_TRUE(is_feasible_schedule(new_view, result.coloring))
        << "step " << step;
    graph = new_graph;
    coloring = std::move(result.coloring);
  }
}

}  // namespace
}  // namespace fdlsp
