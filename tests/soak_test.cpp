// Soak-harness properties (ctest -L soaktest):
//
// 1. Spec grammar: format_soak_spec / parse_soak_spec round-trip, and the
//    unknown-key contract fails loudly.
// 2. Cost model: the default model's two recompute triggers (dirty fraction,
//    span drift) fire exactly on their boundaries.
// 3. Feasibility equivalence: an always-repair soak and an always-recompute
//    soak both hold the feasibility oracle on every event of the same
//    stream, across all six graph families — the repair path never trades
//    correctness for locality. The incremental ConflictIndex is
//    byte-compared against a fresh build every event (stride 1).
// 4. Locality: repair events only recolor inside the distance-2 ball (the
//    oracle observes every event of a geometric stream).
// 5. Fault plans: a distributed soak under an active FaultPlan stays
//    feasible after every event (crash-recovery fallback included).
// 6. Shrinking: an injected drift violation (oracle band stricter than the
//    spec's) shrinks to a smaller spec that still fails, and the printed
//    repro line round-trips through the parser.
//
// FDLSP_SOAK_EVENTS caps the per-family stream length so sanitizer runs can
// dial the suite down without editing code (default 1000).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "coloring/checker.h"
#include "soak/driver.h"
#include "soak/event.h"
#include "soak/topology.h"
#include "support/check.h"
#include "verify/soak_oracles.h"

namespace fdlsp {
namespace {

std::uint64_t soak_events_cap() {
  if (const char* env = std::getenv("FDLSP_SOAK_EVENTS"))
    return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
  return 1000;
}

const char* const kFamilies[] = {"udg", "gnm", "tree", "grid", "ring",
                                 "star"};

TEST(SoakSpec, FormatParseRoundTrip) {
  SoakSpec spec;
  EXPECT_EQ(format_soak_spec(spec), "default");
  EXPECT_EQ(parse_soak_spec("default"), spec);

  spec.seed = 42;
  spec.n = 200;
  spec.events = 5000;
  spec.family = "grid";
  spec.move_weight = 8.0;
  spec.move_step = 0.25;
  spec.skip = {3, 17, 90};
  const std::string text = format_soak_spec(spec);
  EXPECT_EQ(parse_soak_spec(text), spec);

  SoakSpec bands;
  bands.repair_threshold = 1.0;
  bands.drift_band = 100.0;
  EXPECT_EQ(parse_soak_spec(format_soak_spec(bands)), bands);
}

TEST(SoakSpec, UnknownKeyFailsLoudly) {
  EXPECT_THROW(parse_soak_spec("sneed=1"), contract_error);
  EXPECT_THROW(parse_soak_spec("seed"), contract_error);
}

TEST(SoakCostModel, DirtyFractionBoundary) {
  SoakSpec spec;
  spec.repair_threshold = 0.2;
  spec.drift_band = 1.5;
  SoakCostContext context;
  context.spec = &spec;
  context.num_arcs = 100;
  context.span_before = 1;
  context.bound = 10;

  context.dirty_arcs = 20;  // exactly at the threshold: still a repair
  EXPECT_EQ(default_soak_cost(context), SoakAction::kRepair);
  context.dirty_arcs = 21;  // past it: recompute
  EXPECT_EQ(default_soak_cost(context), SoakAction::kRecompute);
}

TEST(SoakCostModel, DriftBoundary) {
  SoakSpec spec;
  spec.repair_threshold = 1.0;
  spec.drift_band = 1.5;
  SoakCostContext context;
  context.spec = &spec;
  context.num_arcs = 100;
  context.dirty_arcs = 0;
  context.bound = 10;

  context.span_before = 15;  // exactly at band × bound: still a repair
  EXPECT_EQ(default_soak_cost(context), SoakAction::kRepair);
  context.span_before = 16;
  EXPECT_EQ(default_soak_cost(context), SoakAction::kRecompute);
}

/// Shared stream shape for the per-family equivalence runs.
SoakSpec family_spec(const std::string& family, std::uint64_t events) {
  SoakSpec spec;
  spec.seed = 0x50AC + static_cast<std::uint64_t>(family[0]);
  spec.n = family == "udg" ? 64 : 48;
  spec.events = events;
  spec.family = family;
  return spec;
}

// Property 3: repair and recompute are feasibility-equivalent on every
// event. The always-repair run keeps the full oracle battery except drift
// (a never-recomputing model has no drift guarantee); stride 1 makes the
// incremental-index byte-compare and the whole-graph feasibility sweep run
// after *every* event.
TEST(SoakEquivalence, RepairAndRecomputeStayFeasibleAcrossFamilies) {
  const std::uint64_t events = soak_events_cap();
  for (const char* family : kFamilies) {
    const SoakSpec spec = family_spec(family, events);

    SoakOptions always_repair;
    always_repair.cost_model = [](const SoakCostContext&) {
      return SoakAction::kRepair;
    };
    SoakOracleOptions oracle_options;
    oracle_options.check_drift = false;
    oracle_options.full_check_stride = 1;
    const SoakVerdict repaired =
        run_soak_with_oracles(spec, always_repair, oracle_options);
    EXPECT_TRUE(repaired.ok) << family << ": event "
                             << repaired.failing_event << ": "
                             << repaired.failure;

    SoakOptions always_recompute;
    always_recompute.cost_model = [](const SoakCostContext&) {
      return SoakAction::kRecompute;
    };
    const SoakVerdict recomputed =
        run_soak_with_oracles(spec, always_recompute, oracle_options);
    EXPECT_TRUE(recomputed.ok) << family << ": event "
                               << recomputed.failing_event << ": "
                               << recomputed.failure;

    // Same stream => same per-event topology in both logs.
    ASSERT_EQ(repaired.stats.events, recomputed.stats.events) << family;
  }
}

// The default cost model mixes both strategies on the same stream and holds
// every oracle, drift included, for the full cap.
TEST(SoakEquivalence, DefaultCostModelHoldsAllOracles) {
  SoakSpec spec;
  spec.seed = 11;
  spec.n = 96;
  spec.side = 9.0;
  spec.events = soak_events_cap();
  const SoakVerdict verdict = run_soak_with_oracles(spec);
  EXPECT_TRUE(verdict.ok) << "event " << verdict.failing_event << ": "
                          << verdict.failure;
  EXPECT_GT(verdict.stats.repairs, 0u);
  EXPECT_GT(verdict.stats.recomputes + verdict.stats.repairs, 0u);
  EXPECT_TRUE(verdict.final_coloring.complete());
}

// Property 5: an active FaultPlan on the distributed engine — drops,
// duplicates, crashes — cannot break per-event feasibility; incomplete or
// conflicting radio outcomes finish through the crash-recovery fallback.
TEST(SoakFaults, DistributedStreamUnderFaultPlanStaysFeasible) {
  SoakSpec spec;
  spec.seed = 23;
  spec.n = 32;
  spec.events = std::min<std::uint64_t>(soak_events_cap(), 200);

  FaultSpec faults;
  faults.drop_rate = 0.05;
  faults.duplicate_rate = 0.05;
  faults.crash_fraction = 0.1;

  SoakOptions options;
  options.distributed = true;
  options.faults = &faults;
  options.reliable = true;
  const SoakVerdict verdict = run_soak_with_oracles(spec, options);
  EXPECT_TRUE(verdict.ok) << "event " << verdict.failing_event << ": "
                          << verdict.failure;
}

// Skipped indices vanish from the log without renumbering the rest — the
// contract the shrinker's ddmin stage builds on.
TEST(SoakDriver, SkipRemovesEventsWithoutRenumbering) {
  SoakSpec spec;
  spec.seed = 7;
  spec.n = 24;
  spec.events = 40;
  spec.skip = {0, 13, 39};
  SoakDriver driver(spec);
  driver.run();
  ASSERT_EQ(driver.log().size(), 37u);
  for (const SoakEventRecord& record : driver.log()) {
    EXPECT_NE(record.index, 0u);
    EXPECT_NE(record.index, 13u);
    EXPECT_NE(record.index, 39u);
  }
  EXPECT_TRUE(driver.coloring().complete());
  EXPECT_FALSE(
      find_violation(ArcView(driver.graph()), driver.coloring()).has_value());
}

// Property 6: a drift violation injected through the oracle-band seam
// shrinks to a still-failing spec whose repro line round-trips.
TEST(SoakShrink, InjectedDriftViolationShrinksToReplayableRepro) {
  SoakSpec spec;
  spec.seed = 2;
  spec.n = 64;
  spec.events = std::min<std::uint64_t>(soak_events_cap(), 2000);
  spec.repair_threshold = 1.0;  // driver repairs essentially always...
  spec.drift_band = 100.0;      // ...and never recomputes for drift
  SoakOracleOptions oracle_options;
  oracle_options.drift_band = 1.2;  // the oracle is stricter: violation

  const SoakVerdict verdict = run_soak_with_oracles(spec, {}, oracle_options);
  ASSERT_FALSE(verdict.ok) << "expected an injected drift violation";

  const SoakFailingPredicate still_fails = [&](const SoakSpec& candidate) {
    return !run_soak_with_oracles(candidate, {}, oracle_options).ok;
  };
  const SoakShrinkOutcome shrunk = shrink_soak_case(spec, still_fails);
  EXPECT_LE(shrunk.spec.events, spec.events);
  EXPECT_TRUE(still_fails(shrunk.spec));
  EXPECT_EQ(parse_soak_spec(format_soak_spec(shrunk.spec)), shrunk.spec);

  const std::string repro = soak_repro_command(shrunk.spec, &oracle_options);
  EXPECT_EQ(repro.rfind("--soak=", 0), 0u);
  EXPECT_NE(repro.find("--soak-band=1.2"), std::string::npos);
}

// The dynamic topology keeps its own invariants over a long mixed stream:
// a frozen Graph per event whose edges are exactly the alive, in-range,
// not-forced-down links.
TEST(SoakTopology, AliveAndLinkBookkeepingStaysConsistent) {
  SoakSpec spec;
  spec.seed = 31;
  spec.n = 40;
  spec.events = std::min<std::uint64_t>(soak_events_cap(), 500);
  DynamicTopology topo(spec);
  std::uint64_t alive_floor_hits = 0;
  for (std::uint64_t i = 0; i < spec.events; ++i) {
    topo.apply(i);
    const Graph& graph = topo.graph();
    ASSERT_EQ(graph.num_nodes(), spec.n);
    std::size_t alive = 0;
    for (NodeId v = 0; v < static_cast<NodeId>(spec.n); ++v)
      alive += topo.alive(v) ? 1u : 0u;
    ASSERT_EQ(alive, topo.num_alive());
    ASSERT_GE(alive, 4u);
    if (alive == 4u) ++alive_floor_hits;
    for (const Edge& e : graph.edges()) {
      ASSERT_TRUE(topo.alive(e.u) && topo.alive(e.v));
      ASSERT_LT(e.u, e.v);
    }
  }
  (void)alive_floor_hits;  // floor may or may not be reached; both fine
}

}  // namespace
}  // namespace fdlsp
