// Unit tests for the fdlsp-lint rule engine (analysis/lint.h): every rule
// fires on a fixture snippet, every allow() directive suppresses it, and the
// sanitizer strips the places banned tokens may legitimately appear.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "analysis/project.h"

namespace fdlsp {
namespace {

// Synthetic paths: lint_source never touches the filesystem, so fixtures can
// pretend to live anywhere in the tree.
constexpr const char* kDetPath = "src/algos/fixture.cpp";
constexpr const char* kFreePath = "src/exp/fixture.cpp";

std::vector<std::string> rules_fired(const std::vector<LintDiagnostic>& ds) {
  std::vector<std::string> rules;
  rules.reserve(ds.size());
  for (const LintDiagnostic& d : ds) rules.push_back(d.rule);
  return rules;
}

TEST(LintCatalog, HasAllNineRules) {
  const auto rules = lint_rules();
  ASSERT_EQ(rules.size(), 9u);
  EXPECT_EQ(rules[0].name, "unseeded-rng");
  EXPECT_EQ(rules[1].name, "time-seed");
  EXPECT_EQ(rules[2].name, "unordered-container");
  EXPECT_EQ(rules[3].name, "pointer-key");
  EXPECT_EQ(rules[4].name, "cross-node-state");
  EXPECT_EQ(rules[5].name, "ordered-in-protocol-state");
  EXPECT_EQ(rules[6].name, "heap-in-hot-path");
  EXPECT_EQ(rules[7].name, "unjustified-allow");
  EXPECT_EQ(rules[8].name, "layer-dag");
}

TEST(LintPaths, DeterministicPathClassification) {
  EXPECT_TRUE(lint_deterministic_path("src/algos/dist_mis.cpp"));
  EXPECT_TRUE(lint_deterministic_path("src/sim/async_engine.cpp"));
  EXPECT_TRUE(lint_deterministic_path("src/coloring/greedy.cpp"));
  EXPECT_TRUE(lint_deterministic_path("src/graph/generators.cpp"));
  EXPECT_TRUE(lint_deterministic_path("algos/fixture.cpp"));
  EXPECT_TRUE(lint_deterministic_path("/root/repo/src/sim/trace.h"));
  EXPECT_FALSE(lint_deterministic_path("src/exp/workloads.cpp"));
  EXPECT_FALSE(lint_deterministic_path("src/verify/oracles.cpp"));
  EXPECT_FALSE(lint_deterministic_path("tests/lint_test.cpp"));
}

TEST(LintSanitize, StripsCommentsAndLiterals) {
  const std::string out = lint_sanitize(
      "int x = 1; // std::rand here\n"
      "/* std::mt19937 in a block\n"
      "   comment */ int y;\n"
      "const char* s = \"std::unordered_map\";\n");
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_EQ(out.find("mt19937"), std::string::npos);
  EXPECT_EQ(out.find("unordered_map"), std::string::npos);
  // Line structure is preserved so diagnostics keep real line numbers.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("int x = 1;"), std::string::npos);
  EXPECT_NE(out.find("int y;"), std::string::npos);
}

TEST(LintSanitize, DigitSeparatorIsNotACharLiteral) {
  // The apostrophes in 1'000'000 must not open a char literal and swallow
  // the rest of the file.
  const std::string out = lint_sanitize(
      "std::size_t cap = 1'000'000;\n"
      "std::unordered_map<int, int> m;\n");
  EXPECT_NE(out.find("unordered_map"), std::string::npos);
}

TEST(LintSanitize, CharLiteralStripped) {
  const std::string out = lint_sanitize("char c = 'x'; int rand_free = 0;\n");
  EXPECT_EQ(out.find('x'), std::string::npos);
  EXPECT_NE(out.find("rand_free"), std::string::npos);
}

TEST(LintUnseededRng, FiresEverywhereEvenOutsideDeterministicPaths) {
  const auto diagnostics =
      lint_source(kFreePath, "std::mt19937 gen(std::random_device{}());\n");
  ASSERT_GE(diagnostics.size(), 2u);  // mt19937 and random_device
  for (const LintDiagnostic& d : diagnostics) {
    EXPECT_EQ(d.rule, "unseeded-rng");
    EXPECT_EQ(d.line, 1u);
    EXPECT_EQ(d.file, kFreePath);
  }
}

TEST(LintUnseededRng, FiresOnCLibraryRand) {
  const auto diagnostics =
      lint_source(kFreePath, "int draw() { return rand() % 6; }\n");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "unseeded-rng");
}

TEST(LintUnseededRng, IdentifierBoundariesRespected) {
  // "rand" embedded in a longer identifier is not ambient randomness.
  const auto diagnostics = lint_source(
      kDetPath, "int operand = 1; int random_walks = 2; int strand = 3;\n");
  // random_walks contains token "random_walks" != any banned token; operand
  // and strand embed "rand" without identifier boundaries.
  EXPECT_TRUE(diagnostics.empty());
}

TEST(LintTimeSeed, FiresOnlyInDeterministicPaths) {
  const std::string snippet =
      "std::uint64_t seed() { return time(nullptr); }\n"
      "double t = std::chrono::steady_clock::now().time_since_epoch()"
      ".count();\n";
  const auto det = lint_source(kDetPath, snippet);
  ASSERT_GE(det.size(), 2u);
  for (const LintDiagnostic& d : det) EXPECT_EQ(d.rule, "time-seed");
  EXPECT_TRUE(lint_source(kFreePath, snippet).empty());
}

TEST(LintTimeSeed, PlainIdentifiersDoNotFire) {
  // `time` as a variable and `clock` without a call are fine.
  const auto diagnostics = lint_source(
      kDetPath, "double time = 0.0; int clock_skew = clock_skew_base;\n");
  EXPECT_TRUE(diagnostics.empty());
}

TEST(LintUnorderedContainer, FiresInDeterministicPathsOnly) {
  const std::string snippet = "std::unordered_map<int, int> counts;\n";
  const auto det = lint_source(kDetPath, snippet);
  ASSERT_EQ(det.size(), 1u);
  EXPECT_EQ(det[0].rule, "unordered-container");
  EXPECT_EQ(det[0].line, 1u);
  EXPECT_TRUE(lint_source(kFreePath, snippet).empty());
}

TEST(LintUnorderedContainer, AllFourVariantsFire) {
  const auto diagnostics = lint_source(
      kDetPath,
      "std::unordered_set<int> a;\n"
      "std::unordered_map<int, int> b;\n"
      "std::unordered_multiset<int> c;\n"
      "std::unordered_multimap<int, int> d;\n");
  ASSERT_EQ(diagnostics.size(), 4u);
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    EXPECT_EQ(diagnostics[i].rule, "unordered-container");
    EXPECT_EQ(diagnostics[i].line, i + 1);
  }
}

TEST(LintPointerKey, FiresOnPointerKeyedContainersAnywhere) {
  const auto diagnostics = lint_source(
      kFreePath,
      "std::map<Node*, int> by_ptr;\n"
      "std::set<const Program*> owners;\n");
  ASSERT_EQ(diagnostics.size(), 2u);
  EXPECT_EQ(diagnostics[0].rule, "pointer-key");
  EXPECT_EQ(diagnostics[1].rule, "pointer-key");
}

TEST(LintPointerKey, ValueTypePointersAreFine) {
  const auto diagnostics = lint_source(
      kFreePath,
      "std::map<int, Node*> by_id;\n"
      "std::set<std::size_t> ids;\n");
  EXPECT_TRUE(diagnostics.empty());
}

// A fixture class that derives from SyncProgram and breaks isolation in the
// two ways the rule recognises: naming an engine type and calling
// .program() / ->program().
constexpr const char* kPeekingProgram =
    "class BadProgram : public SyncProgram {\n"
    " public:\n"
    "  void on_round(SyncContext& ctx, std::span<const Message> inbox) {\n"
    "    auto& peer = engine_->program(self_ + 1);\n"
    "  }\n"
    " private:\n"
    "  SyncEngine* engine_;\n"
    "};\n";

TEST(LintCrossNodeState, FiresInsideProgramClasses) {
  const auto diagnostics = lint_source(kDetPath, kPeekingProgram);
  const auto rules = rules_fired(diagnostics);
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0], "cross-node-state");  // ->program( call, line 4
  EXPECT_EQ(diagnostics[0].line, 4u);
  EXPECT_EQ(rules[1], "cross-node-state");  // SyncEngine member, line 7
  EXPECT_EQ(diagnostics[1].line, 7u);
}

TEST(LintCrossNodeState, SameCodeOutsideProgramClassesIsFine) {
  // Drivers and tests legitimately hold engines and read programs out.
  const auto diagnostics = lint_source(
      kDetPath,
      "void drive(SyncEngine& engine) {\n"
      "  auto& p = engine.program(0);\n"
      "}\n");
  EXPECT_TRUE(diagnostics.empty());
}

TEST(LintCrossNodeState, ForwardDeclarationOpensNoRegion) {
  const auto diagnostics = lint_source(
      kDetPath,
      "class SyncProgram;\n"
      "SyncEngine* global_engine;\n");
  EXPECT_TRUE(diagnostics.empty());
}

TEST(LintAllow, SuppressesExactlyTheNamedRule) {
  const std::string snippet =
      "// Lookup-only cache, never iterated.\n"
      "// fdlsp-lint: allow(unordered-container)\n"
      "std::unordered_map<int, int> cache;\n"
      "int r = rand();\n";
  const auto diagnostics = lint_source(kDetPath, snippet);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "unseeded-rng");  // not suppressed
}

TEST(LintAllow, CommaListSuppressesMultipleRules) {
  const std::string snippet =
      "// Fixture: tolerated ambient randomness, justified for the test.\n"
      "// fdlsp-lint: allow(unseeded-rng, time-seed)\n"
      "std::mt19937 gen;\n"
      "std::uint64_t t = time(nullptr);\n";
  EXPECT_TRUE(lint_source(kDetPath, snippet).empty());
}

TEST(LintAllow, EveryRuleHasAWorkingEscapeHatch) {
  struct Fixture {
    const char* rule;
    const char* path;
    const char* snippet;
  };
  const Fixture fixtures[] = {
      {"unseeded-rng", kDetPath, "std::mt19937 gen;\n"},
      {"time-seed", kDetPath, "auto t = time(nullptr);\n"},
      {"unordered-container", kDetPath, "std::unordered_set<int> s;\n"},
      // pointer-key under a harness path, where ordered-in-protocol-state
      // does not also fire on the same std::map.
      {"pointer-key", kFreePath, "std::map<Node*, int> m;\n"},
      {"cross-node-state", kDetPath,
       "struct P : SyncProgram {\n  SyncEngine* engine_;\n};\n"},
      {"ordered-in-protocol-state", kDetPath, "std::set<int> ids;\n"},
      {"heap-in-hot-path", kFreePath,
       "// fdlsp-lint: hot\nvoid send() {\n  auto p = new int;\n}\n"},
  };
  for (const Fixture& fixture : fixtures) {
    const auto fired = lint_source(fixture.path, fixture.snippet);
    ASSERT_FALSE(fired.empty()) << fixture.rule << " did not fire";
    EXPECT_EQ(fired[0].rule, fixture.rule);
    const std::string allowed =
        std::string("// Fixture justification: known-safe in this test.\n") +
        "// fdlsp-lint: allow(" + fixture.rule + ")\n" + fixture.snippet;
    EXPECT_TRUE(lint_source(fixture.path, allowed).empty())
        << "allow(" << fixture.rule << ") did not suppress";
  }
}

TEST(LintDiagnostics, ToStringIsClickable) {
  LintDiagnostic d;
  d.file = "src/algos/x.cpp";
  d.line = 12;
  d.rule = "time-seed";
  d.message = "wall-clock read";
  EXPECT_EQ(to_string(d), "src/algos/x.cpp:12: [time-seed] wall-clock read");
}

TEST(LintTokensInProse, CommentsAndStringsNeverFire) {
  const auto diagnostics = lint_source(
      kDetPath,
      "// std::unordered_map is banned here; see rand() and ::now().\n"
      "const char* doc = \"never call srand or gettimeofday\";\n");
  EXPECT_TRUE(diagnostics.empty());
}

TEST(LintSanitize, RawStringLiteralsStripped) {
  const std::string out = lint_sanitize(
      "const char* a = R\"(std::rand inside raw)\";\n"
      "std::size_t n = 0;\n"
      "const char* b = R\"delim(std::mt19937 \" )\" still raw)delim\";\n"
      "int tail = 1;\n");
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_EQ(out.find("mt19937"), std::string::npos);
  EXPECT_NE(out.find("std::size_t n = 0;"), std::string::npos);
  EXPECT_NE(out.find("int tail = 1;"), std::string::npos);
}

TEST(LintSanitize, MultilineRawStringKeepsLineStructure) {
  const std::string out = lint_sanitize(
      "const char* s = R\"(line one srand\n"
      "line two gettimeofday\n"
      ")\";\n"
      "int after = 2;\n");
  EXPECT_EQ(out.find("srand"), std::string::npos);
  EXPECT_EQ(out.find("gettimeofday"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("int after = 2;"), std::string::npos);
}

TEST(LintSanitize, IdentifierEndingInRIsNotARawPrefix) {
  // FOO_R ends in R but is an ordinary identifier, so the adjacent string
  // is a normal literal, terminated at its first unescaped quote.
  const std::string out =
      lint_sanitize("int a = FOO_R\"text\"; int live = 2;\n");
  EXPECT_NE(out.find("int live = 2;"), std::string::npos);
  EXPECT_EQ(out.find("text"), std::string::npos);
}

TEST(LintOrderedInProtocolState, FiresInProtocolPaths) {
  const std::string snippet = "std::map<ArcId, Color> colors_;\n";
  const auto sim = lint_source("src/sim/fixture.cpp", snippet);
  ASSERT_EQ(sim.size(), 1u);
  EXPECT_EQ(sim[0].rule, "ordered-in-protocol-state");
  const auto algos = lint_source(kDetPath, snippet);
  ASSERT_EQ(algos.size(), 1u);
  EXPECT_EQ(algos[0].rule, "ordered-in-protocol-state");
  // Harness paths are free to use ordered containers.
  EXPECT_TRUE(lint_source(kFreePath, snippet).empty());
}

TEST(LintOrderedInProtocolState, FiresInsideProgramClassesAnywhere) {
  // coloring/ is deterministic but not a protocol-state path; the rule
  // still applies inside a program class body.
  const auto diagnostics = lint_source(
      "src/coloring/fixture.cpp",
      "struct P : SyncProgram {\n"
      "  std::set<int> pending_;\n"
      "};\n"
      "std::set<int> driver_scratch;\n");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "ordered-in-protocol-state");
  EXPECT_EQ(diagnostics[0].line, 2u);
}

TEST(LintOrderedInProtocolState, UnqualifiedNamesDoNotFire) {
  // Only std::-qualified map/set fire: bare `map`/`set` are ordinary
  // identifiers (and FlatHashMap/FlatHashSet must not self-trigger).
  const auto diagnostics = lint_source(
      "src/sim/fixture.cpp",
      "FlatHashMap<ArcId, Color> colors_;\n"
      "int map = 1; int set = 2;\n");
  EXPECT_TRUE(diagnostics.empty());
}

TEST(LintHeapInHotPath, FiresOnlyInsideAnnotatedFunctions) {
  const auto diagnostics = lint_source(
      kFreePath,
      "// fdlsp-lint: hot\n"
      "void send(Message m) {\n"
      "  buffer.push_back(m);\n"
      "  queue.resize(10);\n"
      "  auto p = new int;\n"
      "  auto q = std::make_unique<int>(1);\n"
      "}\n"
      "void cold() { other.resize(5); auto r = new char; }\n");
  const auto rules = rules_fired(diagnostics);
  ASSERT_EQ(rules.size(), 3u);
  for (const std::string& rule : rules)
    EXPECT_EQ(rule, "heap-in-hot-path");
  EXPECT_EQ(diagnostics[0].line, 4u);  // .resize(
  EXPECT_EQ(diagnostics[1].line, 5u);  // new
  EXPECT_EQ(diagnostics[2].line, 6u);  // make_unique
}

TEST(LintHeapInHotPath, AnnotatedPrototypeOpensNoRegion) {
  const auto diagnostics = lint_source(
      kFreePath,
      "// fdlsp-lint: hot\n"
      "void send(Message m);\n"
      "void later() { x.resize(3); }\n");
  EXPECT_TRUE(diagnostics.empty());
}

TEST(LintHeapInHotPath, ReserveCallsAndReserveIdentifiersDiffer) {
  const auto diagnostics = lint_source(
      kFreePath,
      "// fdlsp-lint: hot\n"
      "void send() {\n"
      "  std::size_t reserve = 4;  int renew = reserve;\n"
      "  pool_.reserve(reserve);\n"
      "}\n");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "heap-in-hot-path");
  EXPECT_EQ(diagnostics[0].line, 4u);
}

TEST(LintUnjustifiedAllow, BareDirectiveFires) {
  const auto diagnostics = lint_source(
      kFreePath,
      "// fdlsp-lint: allow(unordered-container)\n"
      "std::size_t x = 0;\n");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "unjustified-allow");
  EXPECT_EQ(diagnostics[0].line, 1u);
}

TEST(LintUnjustifiedAllow, JustifiedDirectivesPass) {
  EXPECT_TRUE(lint_source(kFreePath,
                          "// Lookup-only cache, never iterated.\n"
                          "// fdlsp-lint: allow(unordered-container)\n")
                  .empty());
  EXPECT_TRUE(
      lint_source(kFreePath,
                  "// fdlsp-lint: allow(unordered-container) never iterated\n")
          .empty());
}

TEST(LintUnjustifiedAllow, UnknownRuleNameFires) {
  const auto diagnostics = lint_source(
      kFreePath,
      "// Justified in prose, but the rule does not exist.\n"
      "// fdlsp-lint: allow(frobnicator)\n");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "unjustified-allow");
  EXPECT_NE(diagnostics[0].message.find("frobnicator"), std::string::npos);
}

TEST(LintUnjustifiedAllow, CannotSuppressItself) {
  // An allow(unjustified-allow) directive must not silence the rule that
  // polices allows — and a directive preceded only by another directive
  // has no justification.
  const auto diagnostics = lint_source(
      kFreePath,
      "// fdlsp-lint: allow(unjustified-allow)\n"
      "// fdlsp-lint: allow(unordered-container)\n");
  EXPECT_EQ(diagnostics.size(), 2u);
  for (const LintDiagnostic& d : diagnostics)
    EXPECT_EQ(d.rule, "unjustified-allow");
}

TEST(LintUnjustifiedAllow, DocPlaceholdersAreNotDirectives) {
  // `allow(<rule>)` in documentation is prose, not a directive operand.
  EXPECT_TRUE(
      lint_source(kFreePath, "//     // fdlsp-lint: allow(<rule>)\n").empty());
}

TEST(LintProtocolStatePaths, Classification) {
  EXPECT_TRUE(lint_protocol_state_path("src/sim/sync_engine.cpp"));
  EXPECT_TRUE(lint_protocol_state_path("src/algos/dist_mis.cpp"));
  EXPECT_TRUE(lint_protocol_state_path("algos/fixture.cpp"));
  EXPECT_FALSE(lint_protocol_state_path("src/coloring/greedy.cpp"));
  EXPECT_FALSE(lint_protocol_state_path("src/exp/workloads.cpp"));
}

TEST(ProjectLayers, ModuleOfParsesPaths) {
  EXPECT_EQ(lint_module_of("src/sim/sync_engine.cpp"), "sim");
  EXPECT_EQ(lint_module_of("/root/repo/src/support/rng.h"), "support");
  EXPECT_EQ(lint_module_of("algos/dist_mis.cpp"), "algos");
  EXPECT_EQ(lint_module_of("tests/lint_test.cpp"), "");
  EXPECT_EQ(lint_module_of("src/unknown/x.cpp"), "");
}

TEST(ProjectLayers, RanksMatchTheDeclaredDag) {
  EXPECT_EQ(lint_layer_rank("support"), 0);
  EXPECT_EQ(lint_layer_rank("graph"), 1);
  EXPECT_EQ(lint_layer_rank("sim"), 2);
  EXPECT_EQ(lint_layer_rank("coloring"), 3);
  EXPECT_EQ(lint_layer_rank("algos"), 3);
  EXPECT_EQ(lint_layer_rank("tdma"), 3);
  EXPECT_EQ(lint_layer_rank("soak"), 4);
  EXPECT_EQ(lint_layer_rank("verify"), 4);
  EXPECT_EQ(lint_layer_rank("analysis"), 4);
  EXPECT_EQ(lint_layer_rank("nonsense"), -1);
}

TEST(ProjectLayerDag, UpwardIncludeFlagged) {
  const std::vector<ProjectFile> files{
      {"src/sim/x.cpp", "#include \"verify/oracles.h\"\n"}};
  const auto diagnostics = lint_layer_dag(files);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "layer-dag");
  EXPECT_EQ(diagnostics[0].line, 1u);
  EXPECT_NE(diagnostics[0].message.find("upward include"), std::string::npos);
}

TEST(ProjectLayerDag, DownwardAndSameLayerIncludesPass) {
  const std::vector<ProjectFile> files{
      {"src/algos/a.cpp",
       "#include \"coloring/c.h\"\n#include \"sim/engine.h\"\n"
       "#include \"support/s.h\"\n#include <map>\n"},
      {"src/coloring/c.cpp", "#include \"graph/g.h\"\n"}};
  EXPECT_TRUE(lint_layer_dag(files).empty());
}

TEST(ProjectLayerDag, SameLayerCycleFlagged) {
  const std::vector<ProjectFile> files{
      {"src/algos/a.cpp", "#include \"coloring/x.h\"\n"},
      {"src/coloring/x.cpp", "#include \"tdma/y.h\"\n"},
      {"src/tdma/y.cpp", "#include \"algos/a.h\"\n"}};
  const auto diagnostics = lint_layer_dag(files);
  ASSERT_EQ(diagnostics.size(), 3u);  // every edge participates in the cycle
  for (const LintDiagnostic& d : diagnostics) {
    EXPECT_EQ(d.rule, "layer-dag");
    EXPECT_NE(d.message.find("module cycle"), std::string::npos);
  }
}

TEST(ProjectLayerDag, CommentedIncludesIgnored) {
  const std::vector<ProjectFile> files{
      {"src/sim/x.cpp", "// #include \"verify/oracles.h\"\n"}};
  EXPECT_TRUE(lint_layer_dag(files).empty());
}

}  // namespace
}  // namespace fdlsp
