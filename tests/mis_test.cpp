// Tests for sequential MIS helpers.
#include <gtest/gtest.h>

#include "algos/mis.h"
#include "graph/generators.h"
#include "support/rng.h"

namespace fdlsp {
namespace {

TEST(GreedyMis, PathAlternates) {
  const Graph path = generate_path(5);
  const auto set = greedy_mis(path);
  EXPECT_EQ(set, (std::vector<NodeId>{0, 2, 4}));
  EXPECT_TRUE(is_maximal_independent_set(path, set));
}

TEST(GreedyMis, CompleteGraphSingleton) {
  const Graph complete = generate_complete(6);
  const auto set = greedy_mis(complete);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(is_maximal_independent_set(complete, set));
}

TEST(GreedyMis, RespectsOrder) {
  const Graph path = generate_path(3);
  const auto set = greedy_mis(path, {1, 0, 2});
  EXPECT_EQ(set, (std::vector<NodeId>{1}));
}

TEST(RandomMis, AlwaysMaximalIndependent) {
  Rng rng(53);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph graph = generate_gnm(40, 90, rng);
    const auto set = random_mis(graph, rng);
    EXPECT_TRUE(is_maximal_independent_set(graph, set));
  }
}

TEST(IsIndependentSet, DetectsAdjacency) {
  const Graph path = generate_path(4);
  EXPECT_TRUE(is_independent_set(path, {0, 2}));
  EXPECT_FALSE(is_independent_set(path, {0, 1}));
  EXPECT_TRUE(is_independent_set(path, {}));
}

TEST(IsMaximal, DetectsNonMaximal) {
  const Graph path = generate_path(5);
  EXPECT_FALSE(is_maximal_independent_set(path, {0}));  // 2,3,4 undominated
  EXPECT_TRUE(is_maximal_independent_set(path, {1, 3}));
}

TEST(IsMaximal, UniverseRestriction) {
  const Graph path = generate_path(5);
  // Within universe {0,1,2}: {1} dominates 0 and 2.
  EXPECT_TRUE(is_maximal_independent_set(path, {1}, {0, 1, 2}));
  // Set members outside the universe are rejected.
  EXPECT_FALSE(is_maximal_independent_set(path, {4}, {0, 1, 2}));
}

}  // namespace
}  // namespace fdlsp
