// Tests for the randomized distance-1 algorithm.
#include <gtest/gtest.h>

#include "algos/dist_mis.h"
#include "algos/randomized.h"
#include "coloring/bounds.h"
#include "coloring/checker.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "support/rng.h"
#include "support/stats.h"

namespace fdlsp {
namespace {

void expect_valid_schedule(const Graph& graph, const ScheduleResult& result) {
  const ArcView view(graph);
  EXPECT_TRUE(is_feasible_schedule(view, result.coloring));
  EXPECT_EQ(result.num_slots, result.coloring.num_colors_used());
}

TEST(Randomized, SingleEdge) {
  const Graph graph = generate_path(2);
  const auto result = run_randomized(graph);
  expect_valid_schedule(graph, result);
  EXPECT_EQ(result.num_slots, 2u);
}

TEST(Randomized, FixedTopologies) {
  for (const Graph& graph :
       {generate_path(8), generate_cycle(9), generate_star(7),
        generate_complete(5), generate_grid(4, 4),
        generate_complete_bipartite(3, 4)}) {
    RandomizedOptions options;
    options.seed = 3;
    const auto result = run_randomized(graph, options);
    expect_valid_schedule(graph, result);
  }
}

TEST(Randomized, RandomSweep) {
  Rng rng(901);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 8 + rng.next_index(30);
    const Graph graph = generate_gnm(n, rng.next_index(3 * n), rng);
    RandomizedOptions options;
    options.seed = rng();
    const auto result = run_randomized(graph, options);
    expect_valid_schedule(graph, result);
  }
}

TEST(Randomized, UdgSweep) {
  Rng rng(907);
  for (int trial = 0; trial < 4; ++trial) {
    const auto geo = generate_udg(50, 4.5, 0.6, rng);
    RandomizedOptions options;
    options.seed = rng();
    const auto result = run_randomized(geo.graph, options);
    expect_valid_schedule(geo.graph, result);
  }
}

TEST(Randomized, DeterministicUnderSeed) {
  Rng rng(911);
  const Graph graph = generate_gnm(20, 40, rng);
  RandomizedOptions options;
  options.seed = 55;
  const auto a = run_randomized(graph, options);
  const auto b = run_randomized(graph, options);
  EXPECT_EQ(a.coloring.raw(), b.coloring.raw());
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(Randomized, EdgelessGraphImmediate) {
  const auto result = run_randomized(Graph(4));
  EXPECT_EQ(result.num_slots, 0u);
}

TEST(Randomized, ProducesLongerSchedulesThanDistMis) {
  // The Section 5 remark: the randomized distance-1 attempt "produced
  // longer schedules" than the MIS-based algorithm. Assert the averaged
  // ordering over a sweep.
  Rng rng(919);
  Summary randomized_slots, mis_slots;
  for (int trial = 0; trial < 6; ++trial) {
    const Graph graph = generate_gnm(40, 160, rng);
    RandomizedOptions rand_options;
    rand_options.seed = rng();
    randomized_slots.add(
        static_cast<double>(run_randomized(graph, rand_options).num_slots));
    DistMisOptions mis_options;
    mis_options.variant = DistMisVariant::kGeneral;
    mis_options.seed = rng();
    mis_slots.add(
        static_cast<double>(run_dist_mis(graph, mis_options).num_slots));
  }
  EXPECT_GT(randomized_slots.mean(), mis_slots.mean());
}

}  // namespace
}  // namespace fdlsp
