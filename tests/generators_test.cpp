// Tests for topology generators.
#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "support/check.h"

namespace fdlsp {
namespace {

TEST(Udg, LinksExactlyWithinRadius) {
  const std::vector<Point> positions{{0, 0}, {0.4, 0}, {1.0, 0}, {0.4, 0.29}};
  const Graph graph = udg_from_positions(positions, 0.5);
  EXPECT_TRUE(graph.has_edge(0, 1));   // distance 0.4
  EXPECT_FALSE(graph.has_edge(0, 2));  // distance 1.0
  EXPECT_TRUE(graph.has_edge(1, 3));   // distance 0.29
  EXPECT_TRUE(graph.has_edge(0, 3));   // distance ~0.494
  EXPECT_FALSE(graph.has_edge(2, 3));  // distance ~0.667
}

TEST(Udg, BoundaryDistanceIsLinked) {
  const std::vector<Point> positions{{0, 0}, {0.5, 0}};
  const Graph graph = udg_from_positions(positions, 0.5);
  EXPECT_TRUE(graph.has_edge(0, 1));
}

TEST(Udg, MatchesBruteForceOnRandomInstances) {
  Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    const auto geo = generate_udg(60, 5.0, 0.5, rng);
    // Brute force reference.
    for (NodeId u = 0; u < 60; ++u) {
      for (NodeId v = u + 1; v < 60; ++v) {
        const bool close =
            distance(geo.positions[u], geo.positions[v]) <= 0.5;
        EXPECT_EQ(geo.graph.has_edge(u, v), close)
            << "pair " << u << "," << v;
      }
    }
  }
}

TEST(Udg, StreamingGridPathMatchesQuadraticReferenceByteForByte) {
  // The grid-bucketed streaming builder must produce the exact same graph
  // as the obvious quadratic all-pairs construction — not just the same
  // edge set, but the same EdgeId order (lexicographic by (min, max)
  // endpoint), because EdgeIds seed downstream RNG draws and any
  // renumbering would silently change every schedule. This pin lets the
  // O(n+m) path replace the quadratic one everywhere, including the
  // n=10^6 plan build.
  Rng rng(0x5ca1ab1e);
  for (const std::size_t n : {1u, 2u, 37u, 250u}) {
    std::vector<Point> positions;
    positions.reserve(n);
    const double side = 6.0;
    for (std::size_t i = 0; i < n; ++i)
      positions.push_back(
          {rng.next_double() * side, rng.next_double() * side});

    const double radius = 0.5;
    const Graph streamed = udg_from_positions(positions, radius);

    GraphBuilder reference(n);
    for (NodeId u = 0; u < n; ++u)
      for (NodeId v = u + 1; v < n; ++v)
        if (distance(positions[u], positions[v]) <= radius)
          reference.add_edge(u, v);
    const Graph quadratic = reference.build();

    ASSERT_EQ(streamed.num_edges(), quadratic.num_edges()) << "n=" << n;
    for (EdgeId e = 0; e < streamed.num_edges(); ++e)
      ASSERT_EQ(streamed.edge(e), quadratic.edge(e))
          << "n=" << n << " EdgeId " << e;
  }
}

TEST(Udg, PositionsInsidePlan) {
  Rng rng(7);
  const auto geo = generate_udg(200, 15.0, 0.5, rng);
  EXPECT_EQ(geo.positions.size(), 200u);
  for (const Point& p : geo.positions) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 15.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 15.0);
  }
}

TEST(QuasiUdg, CertainAndForbiddenZones) {
  Rng rng(127);
  for (int trial = 0; trial < 5; ++trial) {
    const auto geo = generate_quasi_udg(60, 5.0, 1.0, 0.5, 0.5, rng);
    for (NodeId u = 0; u < 60; ++u) {
      for (NodeId v = u + 1; v < 60; ++v) {
        const double d = distance(geo.positions[u], geo.positions[v]);
        if (d <= 0.5) {
          EXPECT_TRUE(geo.graph.has_edge(u, v));
        }
        if (d > 1.0) {
          EXPECT_FALSE(geo.graph.has_edge(u, v));
        }
        // Gray zone links are probabilistic — no assertion.
      }
    }
  }
}

TEST(QuasiUdg, ExtremeProbabilitiesMatchUdg) {
  // p = 1 reproduces the full-radius UDG; p = 0 the alpha-radius UDG.
  Rng rng(131);
  const auto geo = generate_quasi_udg(80, 6.0, 1.0, 0.4, 1.0, rng);
  const Graph reference = udg_from_positions(geo.positions, 1.0);
  EXPECT_EQ(geo.graph.num_edges(), reference.num_edges());

  Rng rng2(131);
  const auto geo0 = generate_quasi_udg(80, 6.0, 1.0, 0.4, 0.0, rng2);
  const Graph reference0 = udg_from_positions(geo0.positions, 0.4);
  EXPECT_EQ(geo0.graph.num_edges(), reference0.num_edges());
}

TEST(QuasiUdg, RejectsBadParameters) {
  Rng rng(1);
  EXPECT_THROW(generate_quasi_udg(5, 1.0, 1.0, 0.0, 0.5, rng),
               contract_error);
  EXPECT_THROW(generate_quasi_udg(5, 1.0, 1.0, 1.5, 0.5, rng),
               contract_error);
  EXPECT_THROW(generate_quasi_udg(5, 1.0, 1.0, 0.5, 1.5, rng),
               contract_error);
}

TEST(Gnm, ExactEdgeCount) {
  Rng rng(5);
  const Graph graph = generate_gnm(50, 200, rng);
  EXPECT_EQ(graph.num_nodes(), 50u);
  EXPECT_EQ(graph.num_edges(), 200u);
}

TEST(Gnm, FullDensityIsComplete) {
  Rng rng(5);
  const Graph graph = generate_gnm(8, 28, rng);
  EXPECT_EQ(graph.num_edges(), 28u);
  for (NodeId u = 0; u < 8; ++u)
    for (NodeId v = u + 1; v < 8; ++v) EXPECT_TRUE(graph.has_edge(u, v));
}

TEST(Gnm, RejectsTooManyEdges) {
  Rng rng(5);
  EXPECT_THROW(generate_gnm(4, 7, rng), contract_error);
}

TEST(RandomTree, IsConnectedAcyclic) {
  Rng rng(31);
  for (std::size_t n : {1u, 2u, 10u, 100u}) {
    const Graph tree = generate_random_tree(n, rng);
    EXPECT_EQ(tree.num_edges(), n - (n > 0 ? 1 : 0));
    EXPECT_TRUE(is_connected(tree));
  }
}

TEST(Path, Structure) {
  const Graph path = generate_path(5);
  EXPECT_EQ(path.num_edges(), 4u);
  EXPECT_EQ(path.degree(0), 1u);
  EXPECT_EQ(path.degree(2), 2u);
  EXPECT_EQ(diameter(path), 4u);
}

TEST(Cycle, Structure) {
  const Graph cycle = generate_cycle(6);
  EXPECT_EQ(cycle.num_edges(), 6u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(cycle.degree(v), 2u);
  EXPECT_TRUE(is_connected(cycle));
  EXPECT_THROW(generate_cycle(2), contract_error);
}

TEST(Complete, Structure) {
  const Graph complete = generate_complete(6);
  EXPECT_EQ(complete.num_edges(), 15u);
  EXPECT_EQ(complete.max_degree(), 5u);
}

TEST(CompleteBipartite, Structure) {
  const Graph graph = generate_complete_bipartite(3, 4);
  EXPECT_EQ(graph.num_nodes(), 7u);
  EXPECT_EQ(graph.num_edges(), 12u);
  // No intra-part edges.
  for (NodeId u = 0; u < 3; ++u)
    for (NodeId v = u + 1; v < 3; ++v) EXPECT_FALSE(graph.has_edge(u, v));
  EXPECT_EQ(count_triangles(graph), 0u);
}

TEST(Star, Structure) {
  const Graph star = generate_star(7);
  EXPECT_EQ(star.degree(0), 6u);
  for (NodeId v = 1; v < 7; ++v) EXPECT_EQ(star.degree(v), 1u);
}

TEST(Grid, Structure) {
  const Graph grid = generate_grid(3, 4);
  EXPECT_EQ(grid.num_nodes(), 12u);
  EXPECT_EQ(grid.num_edges(), 3u * 3 + 2u * 4);  // 17
  EXPECT_EQ(grid.max_degree(), 4u);
  EXPECT_TRUE(is_connected(grid));
}

TEST(Generators, DeterministicUnderSeed) {
  Rng a(99), b(99);
  const Graph ga = generate_gnm(30, 60, a);
  const Graph gb = generate_gnm(30, 60, b);
  ASSERT_EQ(ga.num_edges(), gb.num_edges());
  for (EdgeId e = 0; e < ga.num_edges(); ++e)
    EXPECT_EQ(ga.edge(e), gb.edge(e));
}

}  // namespace
}  // namespace fdlsp
