// Differential property tests for ConflictIndex: every CSR row must match
// the brute-force Definition-2 predicate on every graph family, the parallel
// build must be byte-identical to the sequential one for any thread count,
// and every index-backed kernel (greedy, checker, repair, smallest feasible
// color) must agree exactly with its enumeration-based fallback.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "coloring/bounds.h"
#include "coloring/checker.h"
#include "coloring/conflict.h"
#include "coloring/conflict_graph.h"
#include "coloring/conflict_index.h"
#include "coloring/greedy.h"
#include "algos/repair.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace fdlsp {
namespace {

/// The graph families of the paper's experiments plus the adversarial
/// extremes (Kn: everything conflicts; trees/paths: sparse conflicts).
std::vector<std::pair<std::string, Graph>> family_instances() {
  std::vector<std::pair<std::string, Graph>> instances;
  Rng rng(2026);
  instances.emplace_back("udg40", generate_udg(40, 4.0, 1.0, rng).graph);
  instances.emplace_back("gnm30", generate_gnm(30, 60, rng));
  instances.emplace_back("tree30", generate_random_tree(30, rng));
  instances.emplace_back("grid5x6", generate_grid(5, 6));
  instances.emplace_back("k6", generate_complete(6));
  instances.emplace_back("k4_5", generate_complete_bipartite(4, 5));
  instances.emplace_back("path2", generate_path(2));
  instances.emplace_back("isolated", Graph(5));
  return instances;
}

TEST(ConflictIndex, RowsMatchBruteForcePredicate) {
  for (const auto& [name, graph] : family_instances()) {
    const ArcView view(graph);
    const ConflictIndex index(view);
    ASSERT_EQ(index.num_arcs(), view.num_arcs()) << name;
    std::size_t total = 0;
    for (ArcId a = 0; a < view.num_arcs(); ++a) {
      std::vector<ArcId> reference;
      for (ArcId b = 0; b < view.num_arcs(); ++b)
        if (b != a && arcs_conflict(view, a, b)) reference.push_back(b);
      const auto row = index.conflicts(a);
      EXPECT_EQ(std::vector<ArcId>(row.begin(), row.end()), reference)
          << name << " arc " << a;
      EXPECT_TRUE(std::is_sorted(row.begin(), row.end()))
          << name << " arc " << a;
      total += row.size();
    }
    EXPECT_EQ(index.total_conflicts(), total) << name;
  }
}

TEST(ConflictIndex, ParallelBuildIsByteIdenticalForAnyThreadCount) {
  for (const auto& [name, graph] : family_instances()) {
    const ArcView view(graph);
    const ConflictIndex sequential(view);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      ThreadPool pool(threads);
      const ConflictIndex parallel(view, pool);
      EXPECT_EQ(parallel.raw_offsets(), sequential.raw_offsets())
          << name << " threads=" << threads;
      EXPECT_EQ(parallel.raw_neighbors(), sequential.raw_neighbors())
          << name << " threads=" << threads;
    }
  }
}

TEST(ConflictIndex, PairPredicateMatchesArcsConflict) {
  for (const auto& [name, graph] : family_instances()) {
    const ArcView view(graph);
    const ConflictIndex index(view);
    for (ArcId a = 0; a < view.num_arcs(); ++a)
      for (ArcId b = 0; b < view.num_arcs(); ++b) {
        if (a == b) continue;
        EXPECT_EQ(index.conflict(a, b), arcs_conflict(view, a, b))
            << name << " arcs " << a << "," << b;
      }
  }
}

TEST(ConflictIndex, RowSizesRespectLemma6Bound) {
  for (const auto& [name, graph] : family_instances()) {
    const ArcView view(graph);
    const ConflictIndex index(view);
    const std::size_t delta = graph.max_degree();
    for (ArcId a = 0; a < view.num_arcs(); ++a)
      EXPECT_LT(index.conflict_degree(a),
                std::min(2 * delta * delta + 1, view.num_arcs()))
          << name << " arc " << a;
    if (view.num_arcs() > 0) {
      EXPECT_LE(upper_bound_conflict_degree(index), upper_bound_colors(graph))
          << name;
    }
  }
}

TEST(ConflictIndex, GreedyColoringIdenticalWithAndWithoutIndex) {
  for (const auto& [name, graph] : family_instances()) {
    const ArcView view(graph);
    const ConflictIndex index(view);
    for (const GreedyOrder order :
         {GreedyOrder::kArcId, GreedyOrder::kByDegreeDesc}) {
      const ArcColoring plain = greedy_coloring(view, order);
      const ArcColoring indexed = greedy_coloring(view, order, nullptr, &index);
      EXPECT_EQ(indexed.raw(), plain.raw()) << name;
    }
    Rng r1(7), r2(7);
    const ArcColoring plain = greedy_coloring(view, GreedyOrder::kRandom, &r1);
    const ArcColoring indexed =
        greedy_coloring(view, GreedyOrder::kRandom, &r2, &index);
    EXPECT_EQ(indexed.raw(), plain.raw()) << name;
  }
}

TEST(ConflictIndex, SmallestFeasibleColorKernelMatchesFallback) {
  for (const auto& [name, graph] : family_instances()) {
    const ArcView view(graph);
    const ConflictIndex index(view);
    ConflictScratch scratch(index);
    // A partial coloring with deliberate gaps and clashes.
    Rng rng(11);
    ArcColoring partial(view.num_arcs());
    for (ArcId a = 0; a < view.num_arcs(); ++a)
      if (rng.next_bool(0.6))
        partial.set(a, static_cast<Color>(rng.next_index(4)));
    for (ArcId a = 0; a < view.num_arcs(); ++a)
      EXPECT_EQ(scratch.smallest_feasible_color(partial, a),
                smallest_feasible_color(view, partial, a))
          << name << " arc " << a;
  }
}

TEST(ConflictIndex, CheckerAgreesWithFallbackOnFeasibleAndClashing) {
  for (const auto& [name, graph] : family_instances()) {
    const ArcView view(graph);
    const ConflictIndex index(view);

    const ArcColoring feasible = greedy_coloring(view);
    EXPECT_EQ(is_feasible_schedule(view, feasible, &index),
              is_feasible_schedule(view, feasible))
        << name;
    EXPECT_EQ(count_violations(view, feasible, &index),
              count_violations(view, feasible))
        << name;

    // Random colorings: both paths must count the same violating pairs and
    // agree on whether a violation exists (the witness pair may differ).
    Rng rng(5);
    for (int trial = 0; trial < 5; ++trial) {
      ArcColoring noisy(view.num_arcs());
      for (ArcId a = 0; a < view.num_arcs(); ++a)
        noisy.set(a, static_cast<Color>(rng.next_index(3)));
      EXPECT_EQ(count_violations(view, noisy, &index),
                count_violations(view, noisy))
          << name << " trial " << trial;
      EXPECT_EQ(find_violation(view, noisy, &index).has_value(),
                find_violation(view, noisy).has_value())
          << name << " trial " << trial;
      if (const auto witness = find_violation(view, noisy, &index)) {
        EXPECT_TRUE(arcs_conflict(view, witness->a, witness->b));
        EXPECT_EQ(noisy.color(witness->a), noisy.color(witness->b));
      }
    }
  }
}

TEST(ConflictIndex, RepairIdenticalWithAndWithoutIndex) {
  for (const auto& [name, graph] : family_instances()) {
    const ArcView view(graph);
    const ConflictIndex index(view);
    Rng rng(3);
    ArcColoring partial(view.num_arcs());
    for (ArcId a = 0; a < view.num_arcs(); ++a)
      if (rng.next_bool(0.7))
        partial.set(a, static_cast<Color>(rng.next_index(5)));
    const RepairResult plain = repair_schedule(view, partial);
    const RepairResult indexed = repair_schedule(view, partial, &index);
    EXPECT_EQ(indexed.coloring.raw(), plain.coloring.raw()) << name;
    EXPECT_EQ(indexed.recolored_arcs, plain.recolored_arcs) << name;
    EXPECT_EQ(indexed.num_slots, plain.num_slots) << name;
  }
}

TEST(ConflictIndex, ConflictGraphMatchesOnTheFlyBuild) {
  for (const auto& [name, graph] : family_instances()) {
    const ArcView view(graph);
    const ConflictIndex index(view);
    const Graph baseline = build_conflict_graph(view);
    const Graph indexed = build_conflict_graph(view, index);
    ASSERT_EQ(indexed.num_nodes(), baseline.num_nodes()) << name;
    ASSERT_EQ(indexed.num_edges(), baseline.num_edges()) << name;
    EXPECT_EQ(indexed.max_degree(), baseline.max_degree()) << name;
    for (NodeId v = 0; v < baseline.num_nodes(); ++v) {
      const auto lhs = indexed.neighbors(v);
      const auto rhs = baseline.neighbors(v);
      ASSERT_EQ(lhs.size(), rhs.size()) << name << " node " << v;
      for (std::size_t i = 0; i < lhs.size(); ++i)
        EXPECT_EQ(lhs[i].to, rhs[i].to) << name << " node " << v;
    }
  }
}

}  // namespace
}  // namespace fdlsp
