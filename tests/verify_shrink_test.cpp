// Tests of the fdlsp_verify subsystem itself: scenario materialization,
// oracle battery, shrinking, and the end-to-end mutation demo required by
// ISSUE 1 — a scheduler with one distance-2 constraint deliberately skipped
// must be caught by the oracles and shrunk to a ≤ 12-node reproducer.
#include <gtest/gtest.h>

#include <iostream>

#include "coloring/checker.h"
#include "coloring/conflict.h"
#include "coloring/greedy.h"
#include "graph/algorithms.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "support/rng.h"
#include "verify/differential.h"
#include "verify/oracles.h"
#include "verify/scenario.h"
#include "verify/shrink.h"

namespace fdlsp {
namespace {

// ---- scenario layer ----

TEST(Scenario, MaterializeRespectsFamilies) {
  for (const GraphFamily family : kAllFamilies) {
    Scenario s;
    s.family = family;
    s.n = 12;
    s.density = 0.5;
    s.seed = 7;
    const Graph graph = materialize(s);
    EXPECT_GE(graph.num_nodes(), 12u) << family_name(family);
    if (family == GraphFamily::kTree) {
      EXPECT_EQ(graph.num_edges(), 11u);
    }
  }
}

TEST(Scenario, ExplicitEdgesRoundTrip) {
  const Graph original = generate_cycle(5);
  const Scenario wrapped = scenario_from_graph(original);
  const Graph rebuilt = materialize(wrapped);
  EXPECT_EQ(rebuilt.num_nodes(), original.num_nodes());
  EXPECT_EQ(std::vector<Edge>(rebuilt.edges().begin(), rebuilt.edges().end()),
            std::vector<Edge>(original.edges().begin(),
                              original.edges().end()));
}

TEST(Scenario, ReproCommandIsOneLine) {
  Scenario s;
  s.family = GraphFamily::kGnm;
  s.n = 12;
  s.density = 0.4;
  s.seed = 77;
  const std::string repro = repro_command(s, SchedulerKind::kDfs);
  EXPECT_EQ(repro,
            "--family=gnm --n=12 --density=0.40 --seed=77 --scheduler=DFS");
  EXPECT_EQ(repro.find('\n'), std::string::npos);
}

TEST(Scenario, SampleScenariosCoversAllFamiliesDeterministically) {
  const auto a = sample_scenarios(42, 42, 16);
  const auto b = sample_scenarios(42, 42, 16);
  ASSERT_EQ(a.size(), 42u);
  std::size_t per_family[6] = {0, 0, 0, 0, 0, 0};
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(static_cast<int>(a[i].family), static_cast<int>(b[i].family));
    EXPECT_EQ(a[i].n, b[i].n);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_GE(a[i].n, 4u);
    EXPECT_LE(a[i].n, 16u);
    ++per_family[static_cast<std::size_t>(a[i].family)];
  }
  for (const std::size_t count : per_family) EXPECT_EQ(count, 7u);
}

// ---- oracle battery ----

ScheduleResult correct_greedy(const Graph& graph, std::uint64_t) {
  const ArcView view(graph);
  ScheduleResult result;
  result.coloring = greedy_coloring(view, GreedyOrder::kArcId);
  result.num_slots = result.coloring.num_colors_used();
  return result;
}

TEST(Oracles, CorrectGreedyPassesBattery) {
  for (const Scenario& scenario : sample_scenarios(40, 99, 12)) {
    const OracleVerdict verdict =
        check_oracles(correct_greedy, materialize(scenario), scenario.seed);
    EXPECT_TRUE(verdict.ok) << verdict.failure;
  }
}

TEST(Oracles, IncompleteColoringFailsFeasibility) {
  const auto incomplete = [](const Graph& graph, std::uint64_t) {
    ScheduleResult result;
    result.coloring = ArcColoring(2 * graph.num_edges());  // all uncolored
    return result;
  };
  const Graph graph = generate_path(4);
  const OracleVerdict verdict = check_oracles(incomplete, graph, 1);
  EXPECT_FALSE(verdict.ok);
  EXPECT_NE(verdict.failure.find("feasibility"), std::string::npos);
}

TEST(Oracles, NondeterministicSchedulerCaught) {
  int calls = 0;
  const ScheduleFn flaky = [&calls](const Graph& graph, std::uint64_t) {
    const ArcView view(graph);
    ScheduleResult result;
    result.coloring = greedy_coloring(view, GreedyOrder::kArcId);
    // Every second call shifts all colors by one — still feasible, but no
    // longer byte-identical, exactly the signature of hidden run-to-run
    // state.
    if (++calls % 2 == 0)
      for (ArcId a = 0; a < view.num_arcs(); ++a)
        result.coloring.set(a, result.coloring.color(a) + 1);
    result.num_slots = result.coloring.num_colors_used();
    return result;
  };
  const Graph graph = generate_star(6);
  const OracleVerdict verdict = check_oracles(flaky, graph, 5);
  EXPECT_FALSE(verdict.ok);
  EXPECT_NE(verdict.failure.find("determinism"), std::string::npos);
}

TEST(Oracles, CountViolationsQuantifiesConflicts) {
  const Graph graph = generate_path(3);  // arcs 0..3
  const ArcView view(graph);
  ArcColoring all_same(view.num_arcs());
  for (ArcId a = 0; a < view.num_arcs(); ++a) all_same.set(a, 0);
  // Every pair of the 4 arcs conflicts on a 3-path: C(4,2) = 6 pairs.
  EXPECT_EQ(count_violations(view, all_same), 6u);
  const ArcColoring good = greedy_coloring(view);
  EXPECT_EQ(count_violations(view, good), 0u);
}

// ---- shrinker ----

TEST(Shrink, FindsMinimalTriangleWitness) {
  Rng rng(31);
  Graph graph = generate_gnm(30, 120, rng);
  const auto has_triangle = [](const Graph& g) {
    for (const Edge& e : g.edges())
      if (!common_neighbors(g, e.u, e.v).empty()) return true;
    return false;
  };
  ASSERT_TRUE(has_triangle(graph));
  const ShrinkOutcome outcome = shrink_graph(graph, has_triangle);
  EXPECT_EQ(outcome.graph.num_nodes(), 3u);
  EXPECT_EQ(outcome.graph.num_edges(), 3u);
}

TEST(Shrink, RespectsBudget) {
  Rng rng(37);
  Graph graph = generate_gnm(20, 60, rng);
  std::size_t calls = 0;
  const auto always = [&calls](const Graph&) {
    ++calls;
    return true;
  };
  ShrinkOptions options;
  options.max_checks = 5;
  shrink_graph(graph, always, options);
  // +1 for the initial "must fail" precondition check.
  EXPECT_LE(calls, 6u);
}

// ---- end-to-end mutation demo (ISSUE 1 acceptance criterion) ----

// Mutant scheduler: greedy, but the conflict set used for color choice
// skips the hidden-terminal (distance-2) constraints — it only avoids
// colors of arcs sharing an endpoint. Complete and locally plausible, yet
// infeasible on any graph with a 2-hop path between transmitters.
ScheduleResult mutant_skip_distance2(const Graph& graph, std::uint64_t) {
  const ArcView view(graph);
  ScheduleResult result;
  result.coloring = ArcColoring(view.num_arcs());
  for (ArcId a = 0; a < view.num_arcs(); ++a) {
    std::vector<bool> used;
    const auto mark = [&](ArcId b) {
      if (!result.coloring.is_colored(b)) return;
      const auto c = static_cast<std::size_t>(result.coloring.color(b));
      if (c >= used.size()) used.resize(c + 1, false);
      used[c] = true;
    };
    const NodeId t = view.tail(a);
    const NodeId h = view.head(a);
    for (const NeighborEntry& entry : graph.neighbors(t)) {
      mark(view.arc_from(entry.edge, t));
      mark(ArcView::reverse(view.arc_from(entry.edge, t)));
    }
    for (const NeighborEntry& entry : graph.neighbors(h)) {
      mark(view.arc_from(entry.edge, h));
      mark(ArcView::reverse(view.arc_from(entry.edge, h)));
    }
    Color c = 0;
    while (static_cast<std::size_t>(c) < used.size() &&
           used[static_cast<std::size_t>(c)])
      ++c;
    result.coloring.set(a, c);
  }
  result.num_slots = result.coloring.num_colors_used();
  return result;
}

TEST(MutationDemo, SkippedDistance2ConstraintCaughtAndShrunk) {
  DifferentialOptions options;  // full battery, shrinking on
  bool caught = false;
  for (const Scenario& scenario : sample_scenarios(60, 0xbadc0de, 16)) {
    const auto report = check_scenario(mutant_skip_distance2,
                                       "mutant-skip-d2", scenario, options);
    if (!report) continue;  // e.g. edgeless or star-like instance
    caught = true;
    EXPECT_NE(report->oracle_failure.find("feasibility"), std::string::npos)
        << report->oracle_failure;
    EXPECT_LE(report->shrunk.num_nodes(), 12u) << to_string(*report);
    EXPECT_FALSE(report->repro.empty());
    // Print one specimen so the PR description can quote a real report.
    static bool printed = false;
    if (!printed && report->shrunk.num_nodes() <= 4) {
      printed = true;
      std::cout << "mutation-demo specimen:\n" << to_string(*report);
    }
  }
  EXPECT_TRUE(caught)
      << "the proptest oracles failed to detect a skipped distance-2 "
         "constraint across 60 scenarios";
}

}  // namespace
}  // namespace fdlsp
