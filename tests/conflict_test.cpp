// Tests for the distance-2 arc conflict relation — the correctness core.
#include <gtest/gtest.h>

#include <algorithm>

#include "coloring/conflict.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "support/rng.h"

namespace fdlsp {
namespace {

/// Brute-force reference for the Definition-2 conflict predicate.
bool reference_conflict(const ArcView& view, ArcId a, ArcId b) {
  const NodeId t1 = view.tail(a), h1 = view.head(a);
  const NodeId t2 = view.tail(b), h2 = view.head(b);
  if (t1 == t2 || t1 == h2 || h1 == t2 || h1 == h2) return true;
  return view.graph().has_edge(h1, t2) || view.graph().has_edge(h2, t1);
}

TEST(Conflict, SharedEndpointsAlwaysConflict) {
  // Path 0-1-2: arcs over edges {0,1} and {1,2} share node 1.
  const Graph path = generate_path(3);
  const ArcView view(path);
  const ArcId a01 = view.find_arc(0, 1);
  const ArcId a10 = view.find_arc(1, 0);
  const ArcId a12 = view.find_arc(1, 2);
  const ArcId a21 = view.find_arc(2, 1);
  EXPECT_TRUE(arcs_conflict(view, a01, a10));  // same edge, opposite arcs
  EXPECT_TRUE(arcs_conflict(view, a01, a12));  // head meets tail
  EXPECT_TRUE(arcs_conflict(view, a01, a21));  // same head? 1 vs 1 tail/head
  EXPECT_TRUE(arcs_conflict(view, a10, a12));  // same tail node 1
}

TEST(Conflict, HiddenTerminalOnPath4) {
  // Path 0-1-2-3. Arc (0->1) and arc (2->3): tail 2 adjacent to head 1 ->
  // node 1 would hear both 0 and 2. Conflict.
  const Graph path = generate_path(4);
  const ArcView view(path);
  EXPECT_TRUE(arcs_conflict(view, view.find_arc(0, 1), view.find_arc(2, 3)));
  // Arc (1->0) and (2->3): heads 0 and 3; 0 not adjacent 2, 3 not adjacent 1.
  EXPECT_FALSE(arcs_conflict(view, view.find_arc(1, 0), view.find_arc(2, 3)));
  // Figure 2 of the paper: (v->u) and (w->x) with u-v-w-x a path is fine;
  // that is arcs (1->0) and (2->3) above. Both directions out is fine too.
}

TEST(Conflict, PaperFigure2Cases) {
  // u-v-w-x path, ids 0-1-2-3. (u->v) and (x->w): both inward — the heads
  // v and w are adjacent to the other's tail? tail(x->w)=3, head(u->v)=1:
  // not adjacent; tail(u->v)=0, head(x->w)=2: not adjacent. Feasible.
  const Graph path = generate_path(4);
  const ArcView view(path);
  EXPECT_FALSE(arcs_conflict(view, view.find_arc(0, 1), view.find_arc(3, 2)));
  // (u->v) and (w->x): w transmits while v receives and v-w adjacent.
  EXPECT_TRUE(arcs_conflict(view, view.find_arc(0, 1), view.find_arc(2, 3)));
}

TEST(Conflict, Distance3ArcsNeverConflict) {
  const Graph path = generate_path(6);
  const ArcView view(path);
  // Edge {0,1} and edge {3,4}: all four orientations must be compatible.
  for (ArcId a : {view.find_arc(0, 1), view.find_arc(1, 0)})
    for (ArcId b : {view.find_arc(3, 4), view.find_arc(4, 3)})
      EXPECT_FALSE(arcs_conflict(view, a, b));
}

TEST(Conflict, SymmetricPredicate) {
  Rng rng(17);
  const Graph graph = generate_gnm(25, 60, rng);
  const ArcView view(graph);
  for (ArcId a = 0; a < view.num_arcs(); ++a)
    for (ArcId b = a + 1; b < view.num_arcs(); ++b)
      EXPECT_EQ(arcs_conflict(view, a, b), arcs_conflict(view, b, a));
}

TEST(Conflict, EnumerationMatchesPredicate) {
  Rng rng(23);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph graph = generate_gnm(20, 45, rng);
    const ArcView view(graph);
    for (ArcId a = 0; a < view.num_arcs(); ++a) {
      const auto enumerated = conflicting_arcs(view, a);
      std::vector<ArcId> reference;
      for (ArcId b = 0; b < view.num_arcs(); ++b)
        if (b != a && reference_conflict(view, a, b)) reference.push_back(b);
      EXPECT_EQ(enumerated, reference) << "arc " << a;
    }
  }
}

TEST(Conflict, CompleteGraphAllArcsConflict) {
  // In a complete graph every pair of arcs conflicts (paper Section 3 note).
  const Graph complete = generate_complete(5);
  const ArcView view(complete);
  for (ArcId a = 0; a < view.num_arcs(); ++a)
    for (ArcId b = a + 1; b < view.num_arcs(); ++b)
      EXPECT_TRUE(arcs_conflict(view, a, b));
}

TEST(SmallestFeasibleColor, SkipsConflictingColors) {
  const Graph path = generate_path(3);
  const ArcView view(path);
  ArcColoring coloring(view.num_arcs());
  const ArcId a01 = view.find_arc(0, 1);
  const ArcId a12 = view.find_arc(1, 2);
  EXPECT_EQ(smallest_feasible_color(view, coloring, a01), 0);
  coloring.set(a01, 0);
  EXPECT_EQ(smallest_feasible_color(view, coloring, a12), 1);
  coloring.set(a12, 1);
  const ArcId a21 = view.find_arc(2, 1);
  EXPECT_EQ(smallest_feasible_color(view, coloring, a21), 2);
}

}  // namespace
}  // namespace fdlsp
