// Tests for the Misra–Gries (Δ+1) edge colorer.
#include <gtest/gtest.h>

#include "algos/misra_gries.h"
#include "graph/generators.h"
#include "support/rng.h"

namespace fdlsp {
namespace {

void expect_valid(const Graph& graph) {
  MisraGriesStats stats;
  const auto colors = misra_gries_edge_coloring(graph, &stats);
  EXPECT_TRUE(is_proper_edge_coloring(graph, colors));
  EXPECT_LE(stats.colors_used, graph.max_degree() + 1);
  EXPECT_EQ(colors.size(), graph.num_edges());
}

TEST(MisraGries, SmallFixedGraphs) {
  expect_valid(generate_path(2));
  expect_valid(generate_path(5));
  expect_valid(generate_cycle(6));
  expect_valid(generate_cycle(7));
  expect_valid(generate_star(8));
  expect_valid(generate_complete(4));
  expect_valid(generate_complete(7));
  expect_valid(generate_complete_bipartite(3, 5));
  expect_valid(generate_grid(4, 5));
}

TEST(MisraGries, EmptyAndEdgeless) {
  const auto colors = misra_gries_edge_coloring(Graph(5));
  EXPECT_TRUE(colors.empty());
}

TEST(MisraGries, BipartiteUsesDeltaColors) {
  // König: bipartite graphs are Δ-edge-colorable; MG guarantees Δ+1, so we
  // only assert the guarantee — and that stars hit exactly Δ.
  const Graph star = generate_star(9);
  MisraGriesStats stats;
  const auto colors = misra_gries_edge_coloring(star, &stats);
  EXPECT_TRUE(is_proper_edge_coloring(star, colors));
  EXPECT_EQ(stats.colors_used, star.max_degree());
}

TEST(MisraGries, RandomGraphSweep) {
  Rng rng(67);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 5 + rng.next_index(40);
    const std::size_t max_m = n * (n - 1) / 2;
    const std::size_t m = rng.next_index(max_m + 1);
    expect_valid(generate_gnm(n, m, rng));
  }
}

TEST(MisraGries, RandomTreesUseDeltaOrLess) {
  Rng rng(71);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph tree = generate_random_tree(30, rng);
    MisraGriesStats stats;
    const auto colors = misra_gries_edge_coloring(tree, &stats);
    EXPECT_TRUE(is_proper_edge_coloring(tree, colors));
    // Trees are class 1: exactly Δ colors suffice; MG may use Δ+1 but the
    // guarantee must hold.
    EXPECT_LE(stats.colors_used, tree.max_degree() + 1);
  }
}

TEST(MisraGries, UdgSweep) {
  Rng rng(73);
  for (int trial = 0; trial < 5; ++trial) {
    const auto geo = generate_udg(70, 5.0, 0.6, rng);
    expect_valid(geo.graph);
  }
}

TEST(IsProperEdgeColoring, RejectsBadColorings) {
  const Graph path = generate_path(3);
  EXPECT_FALSE(is_proper_edge_coloring(path, {0, 0}));       // adjacent clash
  EXPECT_FALSE(is_proper_edge_coloring(path, {0}));          // wrong size
  EXPECT_FALSE(is_proper_edge_coloring(path, {0, kNoColor}));  // uncolored
  EXPECT_TRUE(is_proper_edge_coloring(path, {0, 1}));
}

}  // namespace
}  // namespace fdlsp
