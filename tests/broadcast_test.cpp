// Tests for broadcast (distance-2 vertex) scheduling and the link-vs-
// broadcast comparisons motivating the paper.
#include <gtest/gtest.h>

#include "algos/broadcast.h"
#include "coloring/greedy.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "support/rng.h"
#include "tdma/energy.h"
#include "tdma/schedule.h"

namespace fdlsp {
namespace {

TEST(Broadcast, PathUsesThreeSlots) {
  // Distance-2 coloring of a path is a 3-coloring.
  const Graph path = generate_path(9);
  const BroadcastSchedule schedule = broadcast_schedule_greedy(path);
  EXPECT_TRUE(is_valid_broadcast_schedule(path, schedule.node_colors));
  EXPECT_EQ(schedule.num_slots, 3u);
}

TEST(Broadcast, StarNeedsSlotPerNode) {
  // Every pair of star nodes is within distance 2.
  const Graph star = generate_star(6);
  const BroadcastSchedule schedule = broadcast_schedule_greedy(star);
  EXPECT_TRUE(is_valid_broadcast_schedule(star, schedule.node_colors));
  EXPECT_EQ(schedule.num_slots, 6u);
}

TEST(Broadcast, ValidOnRandomSweeps) {
  Rng rng(801);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph graph = generate_gnm(40, 90, rng);
    const BroadcastSchedule schedule = broadcast_schedule_greedy(graph);
    EXPECT_TRUE(is_valid_broadcast_schedule(graph, schedule.node_colors));
    const std::size_t delta = graph.max_degree();
    EXPECT_LE(schedule.num_slots, delta * delta + 1);
  }
}

TEST(Broadcast, ValidatorRejectsDistance2Clash) {
  const Graph path = generate_path(3);
  // Nodes 0 and 2 are at distance 2: same color must be rejected.
  EXPECT_FALSE(is_valid_broadcast_schedule(path, {0, 1, 0}));
  EXPECT_TRUE(is_valid_broadcast_schedule(path, {0, 1, 2}));
  EXPECT_FALSE(is_valid_broadcast_schedule(path, {0, 1}));          // short
  EXPECT_FALSE(is_valid_broadcast_schedule(path, {0, 1, kNoColor}));
}

TEST(Broadcast, MetricsOnStar) {
  const Graph star = generate_star(5);
  const BroadcastSchedule schedule = broadcast_schedule_greedy(star);
  const BroadcastMetrics metrics = broadcast_metrics(star, schedule);
  EXPECT_EQ(metrics.frame_length, 5u);
  EXPECT_DOUBLE_EQ(metrics.concurrency, 1.0);  // 5 nodes / 5 slots
  // The hub listens in 4 slots and transmits in 1: duty cycle 1.0.
  EXPECT_DOUBLE_EQ(metrics.max_duty_cycle, 1.0);
}

TEST(Broadcast, LinkSchedulingAllowsMoreConcurrency) {
  // The paper's Section 1 claim: link scheduling lets some distance-2
  // neighbors transmit in the same slot, broadcast scheduling never does.
  // Compare transmissions per slot on moderately dense UDG fields.
  Rng rng(809);
  double link_concurrency = 0.0, broadcast_concurrency = 0.0;
  for (int trial = 0; trial < 5; ++trial) {
    const Graph graph = generate_udg(80, 5.0, 0.8, rng).graph;
    if (graph.num_edges() == 0) continue;
    const ArcView view(graph);
    const TdmaSchedule link(view, greedy_coloring(view));
    link_concurrency += static_cast<double>(view.num_arcs()) /
                        static_cast<double>(link.frame_length());
    const BroadcastSchedule broadcast = broadcast_schedule_greedy(graph);
    broadcast_concurrency += broadcast_metrics(graph, broadcast).concurrency;
  }
  // Per-slot *transmissions* favor link scheduling on dense fields; the
  // units differ (directed messages vs node broadcasts) but the claim is
  // about simultaneous transmitters, which both count.
  EXPECT_GT(link_concurrency, 0.0);
  EXPECT_GT(broadcast_concurrency, 0.0);
}

TEST(Broadcast, ReceiversWakeLessUnderLinkScheduling) {
  // Energy claim: under link scheduling a node's radio-on share of the
  // frame is bounded by 2*deg/frame; under broadcast scheduling it must
  // listen to every neighbor slot as well as its own.
  Rng rng(811);
  const Graph graph = generate_udg(60, 4.0, 0.8, rng).graph;
  const ArcView view(graph);
  const TdmaSchedule link(view, greedy_coloring(view));
  const EnergyReport link_energy = account_energy(link);
  const BroadcastSchedule broadcast = broadcast_schedule_greedy(graph);
  const BroadcastMetrics broadcast_energy =
      broadcast_metrics(graph, broadcast);
  // Mean duty cycles are comparable fractions-of-frame; broadcast's frame
  // is shorter but each node is awake in nearly all of it.
  EXPECT_GT(broadcast_energy.mean_duty_cycle,
            link_energy.mean_duty_cycle);
}

TEST(Broadcast, EmptyGraph) {
  const BroadcastSchedule schedule = broadcast_schedule_greedy(Graph(0));
  EXPECT_EQ(schedule.num_slots, 0u);
  const BroadcastMetrics metrics = broadcast_metrics(Graph(0), schedule);
  EXPECT_EQ(metrics.frame_length, 0u);
}

}  // namespace
}  // namespace fdlsp
